#include "placement/pools.hpp"

#include <gtest/gtest.h>

namespace mlec {
namespace {

const DataCenterConfig kDc = DataCenterConfig::paper_default();
const MlecCode kCode = MlecCode::paper_default();

TEST(PoolLayout, PaperGeometryCC) {
  const PoolLayout layout(kDc, kCode, MlecScheme::kCC);
  EXPECT_EQ(layout.local_pool_disks(), 20u);
  EXPECT_EQ(layout.local_pools_per_enclosure(), 6u);
  EXPECT_EQ(layout.local_pools_per_rack(), 48u);
  EXPECT_EQ(layout.total_local_pools(), 2880u);
  EXPECT_DOUBLE_EQ(layout.local_pool_capacity_tb(), 400.0);
  EXPECT_EQ(layout.rack_groups(), 5u);       // 60 racks / 12
  EXPECT_EQ(layout.network_pools(), 240u);   // 5 groups * 48 positions
  EXPECT_EQ(layout.network_pool_members(), 12u);
}

TEST(PoolLayout, PaperGeometryCD) {
  const PoolLayout layout(kDc, kCode, MlecScheme::kCD);
  EXPECT_EQ(layout.local_pool_disks(), 120u);
  EXPECT_EQ(layout.local_pools_per_enclosure(), 1u);
  EXPECT_EQ(layout.total_local_pools(), 480u);
  EXPECT_DOUBLE_EQ(layout.local_pool_capacity_tb(), 2400.0);
  EXPECT_EQ(layout.network_pools(), 40u);  // 5 groups * 8 enclosure positions
}

TEST(PoolLayout, PaperGeometryDeclusteredNetwork) {
  const PoolLayout dc_layout(kDc, kCode, MlecScheme::kDC);
  EXPECT_EQ(dc_layout.network_pools(), 1u);
  EXPECT_EQ(dc_layout.network_pool_racks(), 60u);
  EXPECT_EQ(dc_layout.network_pool_members(), 2880u);

  const PoolLayout dd_layout(kDc, kCode, MlecScheme::kDD);
  EXPECT_EQ(dd_layout.network_pool_members(), 480u);
}

TEST(PoolLayout, StripeCounts) {
  const PoolLayout layout(kDc, kCode, MlecScheme::kCC);
  // Total chunks / 240 chunks per network stripe.
  const double chunks = 57600.0 * (20e12 / 128e3);
  EXPECT_NEAR(layout.total_network_stripes(), chunks / 240.0, 1.0);
  EXPECT_NEAR(layout.network_stripes_per_pool(), chunks / 240.0 / 240.0, 1.0);
  // A 20-disk Cp pool at one chunk column per stripe.
  EXPECT_NEAR(layout.local_stripes_per_pool(), 20e12 / 128e3, 1.0);
}

TEST(PoolLayout, DivisibilityViolationsThrow) {
  // (16+3) local: 120 % 19 != 0 under clustered local placement.
  EXPECT_THROW(PoolLayout(kDc, MlecCode{{10, 2}, {16, 3}}, MlecScheme::kCC),
               PreconditionError);
  // (10+3) network: 60 % 13 != 0 under clustered network placement.
  EXPECT_THROW(PoolLayout(kDc, MlecCode{{10, 3}, {17, 3}}, MlecScheme::kCC),
               PreconditionError);
  // Same codes are fine declustered.
  EXPECT_NO_THROW(PoolLayout(kDc, MlecCode{{10, 3}, {16, 3}}, MlecScheme::kDD));
}

TEST(PoolLayout, DeclusteredPoolMustFitStripe) {
  DataCenterConfig small = kDc;
  small.disks_per_enclosure = 10;  // narrower than (17+3)
  EXPECT_THROW(PoolLayout(small, kCode, MlecScheme::kCD), PreconditionError);
}

TEST(SlecLayout, PaperGeometry) {
  const SlecCode code{7, 3};
  const SlecLayout loc_cp(kDc, code, {SlecDomain::kLocal, Placement::kClustered});
  EXPECT_EQ(loc_cp.pool_disks(), 10u);
  EXPECT_EQ(loc_cp.total_pools(), 5760u);

  const SlecLayout loc_dp(kDc, code, {SlecDomain::kLocal, Placement::kDeclustered});
  EXPECT_EQ(loc_dp.pool_disks(), 120u);
  EXPECT_EQ(loc_dp.total_pools(), 480u);

  const SlecLayout net_cp(kDc, code, {SlecDomain::kNetwork, Placement::kClustered});
  EXPECT_EQ(net_cp.total_pools(), 5760u);

  const SlecLayout net_dp(kDc, code, {SlecDomain::kNetwork, Placement::kDeclustered});
  EXPECT_EQ(net_dp.total_pools(), 1u);
  EXPECT_EQ(net_dp.pool_disks(), 57600u);
}

TEST(SlecLayout, StripeCountConsistency) {
  const SlecCode code{7, 3};
  const SlecLayout layout(kDc, code, {SlecDomain::kLocal, Placement::kDeclustered});
  EXPECT_NEAR(layout.total_stripes() / layout.total_pools(), layout.stripes_per_pool(), 1e-6);
}

}  // namespace
}  // namespace mlec
