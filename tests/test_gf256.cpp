#include "gf/gf256.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace mlec::gf {
namespace {

TEST(Gf256, AdditionIsXor) {
  EXPECT_EQ(add(0x57, 0x83), 0x57 ^ 0x83);
  EXPECT_EQ(add(0xff, 0xff), 0);
}

TEST(Gf256, MultiplicativeIdentityAndZero) {
  for (unsigned a = 0; a < 256; ++a) {
    EXPECT_EQ(mul(static_cast<byte_t>(a), 1), a);
    EXPECT_EQ(mul(1, static_cast<byte_t>(a)), a);
    EXPECT_EQ(mul(static_cast<byte_t>(a), 0), 0);
  }
}

TEST(Gf256, KnownProducts) {
  // x * x^7 = x^8 reduces to x^4+x^3+x^2+1 = 0x1d under the 0x11d polynomial.
  EXPECT_EQ(mul(2, 128), 0x1d);
  EXPECT_EQ(mul(2, 2), 4);
  EXPECT_EQ(mul(4, 4), 16);
}

TEST(Gf256, MulIsCommutativeAndAssociative) {
  Rng rng(4);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<byte_t>(rng.uniform_below(256));
    const auto b = static_cast<byte_t>(rng.uniform_below(256));
    const auto c = static_cast<byte_t>(rng.uniform_below(256));
    EXPECT_EQ(mul(a, b), mul(b, a));
    EXPECT_EQ(mul(mul(a, b), c), mul(a, mul(b, c)));
  }
}

TEST(Gf256, DistributesOverAddition) {
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<byte_t>(rng.uniform_below(256));
    const auto b = static_cast<byte_t>(rng.uniform_below(256));
    const auto c = static_cast<byte_t>(rng.uniform_below(256));
    EXPECT_EQ(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
  }
}

TEST(Gf256, EveryNonzeroHasInverse) {
  for (unsigned a = 1; a < 256; ++a)
    EXPECT_EQ(mul(static_cast<byte_t>(a), inv(static_cast<byte_t>(a))), 1) << "a=" << a;
}

TEST(Gf256, ZeroHasNoInverse) { EXPECT_THROW(inv(0), PreconditionError); }

TEST(Gf256, DivisionInvertsMultiplication) {
  Rng rng(6);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<byte_t>(rng.uniform_below(256));
    const auto b = static_cast<byte_t>(1 + rng.uniform_below(255));
    EXPECT_EQ(div(mul(a, b), b), a);
  }
  EXPECT_THROW(div(5, 0), PreconditionError);
}

TEST(Gf256, PowMatchesRepeatedMul) {
  for (unsigned a : {0u, 1u, 2u, 3u, 0x53u, 0xffu}) {
    byte_t acc = 1;
    for (unsigned n = 0; n < 300; ++n) {
      EXPECT_EQ(pow(static_cast<byte_t>(a), n), acc) << "a=" << a << " n=" << n;
      acc = mul(acc, static_cast<byte_t>(a));
    }
  }
}

TEST(Gf256, PowLargeExponentNoOverflow) {
  // log[a] * n used to overflow 32 bits for n > ~16.9M; a^n = a^(n mod 255)
  // for nonzero a (multiplicative group order 255).
  for (unsigned a : {2u, 3u, 0x57u, 0xffu})
    for (unsigned n : {255u, 256u, 16'900'000u, 100'000'000u, 4'000'000'000u})
      EXPECT_EQ(pow(static_cast<byte_t>(a), n), pow(static_cast<byte_t>(a), n % 255))
          << "a=" << a << " n=" << n;
  EXPECT_EQ(pow(0, 123'456'789u), 0);
  EXPECT_EQ(pow(2, 255u * 10'000'000u), 1);
}

TEST(Gf256, GeneratorHasFullOrder) {
  // kGenerator must generate all 255 nonzero elements.
  std::vector<bool> seen(256, false);
  byte_t x = 1;
  for (int i = 0; i < 255; ++i) {
    EXPECT_FALSE(seen[x]);
    seen[x] = true;
    x = mul(x, kGenerator);
  }
  EXPECT_EQ(x, 1);
}

TEST(Gf256, MulTablesMatchScalar) {
  Rng rng(7);
  for (int round = 0; round < 20; ++round) {
    const auto c = static_cast<byte_t>(rng.uniform_below(256));
    const auto table = make_mul_table(c);
    std::vector<byte_t> src(257), dst(257), acc(257);
    for (auto& b : src) b = static_cast<byte_t>(rng.uniform_below(256));
    for (auto& b : acc) b = static_cast<byte_t>(rng.uniform_below(256));
    auto acc_orig = acc;

    mul_assign(table, src, dst);
    mul_acc(table, src, acc);
    for (std::size_t i = 0; i < src.size(); ++i) {
      EXPECT_EQ(dst[i], mul(c, src[i]));
      EXPECT_EQ(acc[i], add(acc_orig[i], mul(c, src[i])));
    }
  }
}

TEST(Gf256, FullTablesMatchNibbleTables) {
  Rng rng(8);
  for (int round = 0; round < 20; ++round) {
    const auto c = static_cast<byte_t>(rng.uniform_below(256));
    const auto full = make_full_table(c);
    std::vector<byte_t> src(123), a(123), b(123);
    for (auto& x : src) x = static_cast<byte_t>(rng.uniform_below(256));
    mul_assign(make_mul_table(c), src, a);
    mul_assign(full, src, b);
    EXPECT_EQ(a, b);
    auto acc_a = a, acc_b = b;
    mul_acc(make_mul_table(c), src, acc_a);
    mul_acc(full, src, acc_b);
    EXPECT_EQ(acc_a, acc_b);
  }
}

TEST(Gf256, MulAccSizeMismatchRejected) {
  const auto table = make_mul_table(3);
  std::vector<byte_t> a(4), b(5);
  EXPECT_THROW(mul_acc(table, a, b), PreconditionError);
}

}  // namespace
}  // namespace mlec::gf
