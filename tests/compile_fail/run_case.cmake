# Negative-compile driver for the thread-safety contract tests.
#
# Invoked by ctest (see tests/CMakeLists.txt) as:
#   cmake -DCOMPILER=<clang++> -DSOURCE=<case.cpp> -DINCLUDE_DIR=<src>
#         -P run_case.cmake
#
# Each case file compiles cleanly as written and contains a deliberate
# violation behind -DMLEC_TSA_VIOLATION. The driver proves BOTH halves:
#  1. the control build (no violation) passes under -Werror=thread-safety-
#     analysis — the scaffolding itself is warning-free, so
#  2. the violation build failing can only be the analysis catching the
#     seeded bug, which the driver confirms by matching the diagnostic text.

foreach(var COMPILER SOURCE INCLUDE_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_case.cmake requires -D${var}=...")
  endif()
endforeach()

set(base_flags -std=c++20 -fsyntax-only -Wthread-safety
               -Werror=thread-safety-analysis -I${INCLUDE_DIR})

execute_process(
  COMMAND ${COMPILER} ${base_flags} ${SOURCE}
  RESULT_VARIABLE control_result
  ERROR_VARIABLE control_stderr)
if(NOT control_result EQUAL 0)
  message(FATAL_ERROR
          "control build of ${SOURCE} failed (expected clean):\n${control_stderr}")
endif()

execute_process(
  COMMAND ${COMPILER} ${base_flags} -DMLEC_TSA_VIOLATION ${SOURCE}
  RESULT_VARIABLE violation_result
  ERROR_VARIABLE violation_stderr)
if(violation_result EQUAL 0)
  message(FATAL_ERROR
          "violation build of ${SOURCE} compiled cleanly: the thread-safety "
          "analysis failed to reject the seeded bug")
endif()
if(NOT violation_stderr MATCHES "thread-safety")
  message(FATAL_ERROR
          "violation build of ${SOURCE} failed for an unrelated reason "
          "(no thread-safety diagnostic):\n${violation_stderr}")
endif()

message(STATUS "${SOURCE}: control clean, violation rejected by the analysis")
