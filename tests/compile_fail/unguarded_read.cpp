// Negative-compile case: reading a MLEC_GUARDED_BY member without holding
// its mutex must be rejected by -Werror=thread-safety-analysis.
//
// Driven by run_case.cmake: compiled once WITHOUT the violation macro (must
// succeed — proves the scaffolding itself is clean) and once WITH
// -DMLEC_TSA_VIOLATION (must fail with a thread-safety diagnostic).
#include "util/thread_safety.hpp"

namespace {

class Counter {
 public:
  void increment() {
    mlec::MutexLock lock(mutex_);
    ++count_;
  }

  int value() const {
#ifdef MLEC_TSA_VIOLATION
    return count_;  // unguarded read: -Wthread-safety must reject this
#else
    mlec::MutexLock lock(mutex_);
    return count_;
#endif
  }

 private:
  mutable mlec::Mutex mutex_;
  int count_ MLEC_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.increment();
  return counter.value() == 1 ? 0 : 1;
}
