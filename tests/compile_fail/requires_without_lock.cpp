// Negative-compile case: calling a MLEC_REQUIRES(mutex) function without
// holding that mutex must be rejected by -Werror=thread-safety-analysis.
//
// Driven by run_case.cmake: compiled once WITHOUT the violation macro (must
// succeed) and once WITH -DMLEC_TSA_VIOLATION (must fail with a
// thread-safety diagnostic).
#include "util/thread_safety.hpp"

namespace {

class Ledger {
 public:
  void deposit(int amount) {
#ifdef MLEC_TSA_VIOLATION
    add_locked(amount);  // caller does not hold mutex_: must be rejected
#else
    mlec::MutexLock lock(mutex_);
    add_locked(amount);
#endif
  }

  int balance() const {
    mlec::MutexLock lock(mutex_);
    return balance_;
  }

 private:
  void add_locked(int amount) MLEC_REQUIRES(mutex_) { balance_ += amount; }

  mutable mlec::Mutex mutex_;
  int balance_ MLEC_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Ledger ledger;
  ledger.deposit(5);
  return ledger.balance() == 5 ? 0 : 1;
}
