#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <set>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace mlec {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a() == b() ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(7);
  Rng child = parent.split();
  // The child stream should not replay the parent's outputs.
  Rng parent_copy(7);
  (void)parent_copy();  // align with the split's consumption
  int same = 0;
  for (int i = 0; i < 100; ++i) same += child() == parent_copy() ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(42);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformBelowRespectsBound) {
  Rng rng(42);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 7000; ++i) ++counts[rng.uniform_below(7)];
  for (int c : counts) EXPECT_NEAR(c, 1000, 150);
}

TEST(Rng, UniformBelowRejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_below(0), PreconditionError);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-2, 3);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(9);
  const double rate = 0.25;
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.1);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), PreconditionError);
  EXPECT_THROW(rng.exponential(-1.0), PreconditionError);
}

TEST(Rng, WeibullShapeOneIsExponential) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.weibull(1.0, 4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.2);
}

TEST(Rng, BernoulliEdges) {
  Rng rng(3);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(Rng, BinomialMeanAndBounds) {
  Rng rng(13);
  double sum = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const auto v = rng.binomial(40, 0.3);
    ASSERT_LE(v, 40u);
    sum += static_cast<double>(v);
  }
  EXPECT_NEAR(sum / n, 12.0, 0.4);
}

TEST(Rng, BinomialLargePUsesComplement) {
  Rng rng(14);
  double sum = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.binomial(10, 0.9));
  EXPECT_NEAR(sum / n, 9.0, 0.2);
}

TEST(Rng, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(21);
  for (int round = 0; round < 50; ++round) {
    auto sample = rng.sample_without_replacement(100, 30);
    ASSERT_EQ(sample.size(), 30u);
    std::set<std::uint64_t> uniq(sample.begin(), sample.end());
    EXPECT_EQ(uniq.size(), 30u);
    for (auto v : sample) EXPECT_LT(v, 100u);
  }
}

TEST(Rng, SampleWithoutReplacementFullPopulation) {
  Rng rng(22);
  auto sample = rng.sample_without_replacement(10, 10);
  std::sort(sample.begin(), sample.end());
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(Rng, SampleWithoutReplacementIsUniform) {
  Rng rng(23);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 4000; ++i)
    for (auto v : rng.sample_without_replacement(10, 3)) ++counts[v];
  for (int c : counts) EXPECT_NEAR(c, 1200, 150);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.shuffle(std::span<int>(v));
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, StateRoundTripReplaysSequence) {
  Rng rng(99);
  rng.uniform();  // advance off the seed
  const auto saved = rng.state();
  std::vector<double> first;
  for (int i = 0; i < 8; ++i) first.push_back(rng.uniform());
  Rng replay(1);
  replay.set_state(saved);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(replay.uniform(), first[i]);
}

TEST(Rng, SetStateRejectsAllZero) {
  Rng rng(1);
  EXPECT_THROW(rng.set_state({0, 0, 0, 0}), PreconditionError);
}

TEST(Rng, UniformFillIsBitIdenticalToSingleDraws) {
  Rng fill_rng(123), single_rng(123);
  std::array<double, 257> filled{};  // odd size: no block-boundary luck
  fill_rng.uniform_fill(filled);
  for (double v : filled) EXPECT_EQ(v, single_rng.uniform());
  EXPECT_EQ(fill_rng.state(), single_rng.state());
}

TEST(Rng, ExponentialFillIsBitIdenticalToSingleDraws) {
  const double rate = 3.25;
  Rng fill_rng(7), single_rng(7);
  std::array<double, 100> filled{};
  fill_rng.exponential_fill(filled, rate);
  for (double v : filled) EXPECT_EQ(v, single_rng.exponential(rate));
  EXPECT_EQ(fill_rng.state(), single_rng.state());
}

TEST(Rng, ExponentialFillMomentsMatchTheory) {
  const double rate = 0.5;  // mean 2, variance 4
  Rng rng(2024);
  std::vector<double> xs(200000);
  rng.exponential_fill(xs, rate);
  double sum = 0.0;
  for (double x : xs) {
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  const double mean = sum / static_cast<double>(xs.size());
  EXPECT_NEAR(mean, 1.0 / rate, 0.02);
  double sq = 0.0;
  for (double x : xs) sq += (x - mean) * (x - mean);
  const double variance = sq / static_cast<double>(xs.size());
  EXPECT_NEAR(variance, 1.0 / (rate * rate), 0.1);
}

TEST(Rng, UniformFillCoversUnitInterval) {
  Rng rng(55);
  std::vector<double> xs(100000);
  rng.uniform_fill(xs);
  double lo = 1.0, hi = 0.0, sum = 0.0;
  for (double x : xs) {
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    lo = std::min(lo, x);
    hi = std::max(hi, x);
    sum += x;
  }
  EXPECT_LT(lo, 1e-3);
  EXPECT_GT(hi, 1.0 - 1e-3);
  EXPECT_NEAR(sum / static_cast<double>(xs.size()), 0.5, 0.01);
}

TEST(Rng, ExponentialFillRejectsNonPositiveRate) {
  Rng rng(1);
  std::array<double, 4> buf{};
  EXPECT_THROW(rng.exponential_fill(buf, 0.0), PreconditionError);
  EXPECT_THROW(rng.exponential_fill(buf, -1.0), PreconditionError);
}

TEST(Rng, EmptyFillsLeaveStateUntouched) {
  Rng rng(9);
  const auto before = rng.state();
  rng.uniform_fill({});
  rng.exponential_fill({}, 1.0);
  EXPECT_EQ(rng.state(), before);
}

TEST(Rng, SubstreamsAreDeterministicAndDistinct) {
  Rng a = Rng::for_substream(42, 0);
  Rng a2 = Rng::for_substream(42, 0);
  Rng b = Rng::for_substream(42, 1);
  bool differs = false;
  for (int i = 0; i < 16; ++i) {
    const double va = a.uniform();
    EXPECT_EQ(va, a2.uniform());
    if (va != b.uniform()) differs = true;
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace mlec
