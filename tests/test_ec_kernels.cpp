// Property tests for the SIMD-dispatched EC data plane: every backend the
// host supports must be byte-identical to the scalar reference (which is
// itself checked against naive gf::mul loops), over odd lengths, unaligned
// offsets, and the fused multi-source x multi-parity path.
#include "ec/backend.hpp"
#include "ec/codec.hpp"
#include "ec/kernels.hpp"
#include "ec/stream.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <span>
#include <vector>

#include "gf/gf256.hpp"
#include "gf/rs.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace mlec::ec {
namespace {

using gf::byte_t;

std::vector<Backend> all_backends() {
  std::vector<Backend> out;
  for (int i = 0; i < kBackendCount; ++i) out.push_back(static_cast<Backend>(i));
  return out;
}

std::vector<Backend> supported() {
  std::vector<Backend> out;
  for (auto b : all_backends())
    if (backend_supported(b)) out.push_back(b);
  return out;
}

/// Parameterized suites run over ALL backends; a host that cannot run one
/// reports it as a ctest SKIP rather than silently testing fewer units.
#define MLEC_SKIP_IF_UNSUPPORTED(backend)                                             \
  do {                                                                                \
    if (!backend_supported(backend))                                                  \
      GTEST_SKIP() << to_string(backend)                                              \
                   << (backend_built(backend) ? " not supported by this host CPU"     \
                                              : " kernels not compiled in this build"); \
  } while (0)

std::vector<byte_t> random_buffer(std::size_t len, Rng& rng) {
  std::vector<byte_t> buf(len);
  for (auto& b : buf) b = static_cast<byte_t>(rng.uniform_below(256));
  return buf;
}

/// The exact length/offset grid from the issue plus vector-width edges.
const std::vector<std::size_t> kLengths{0, 1, 15, 16, 17, 31, 32, 33, 63, 64, 65, 4095, 4096, 4097};
const std::vector<std::size_t> kOffsets{0, 1, 3, 8, 15};

TEST(EcBackend, NamesRoundTrip) {
  for (auto b : all_backends()) {
    const auto parsed = parse_backend(to_string(b));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, b);
  }
  EXPECT_FALSE(parse_backend("auto").has_value());
  EXPECT_FALSE(parse_backend("sse9").has_value());
}

TEST(EcBackend, ParseIsCaseInsensitive) {
  EXPECT_EQ(parse_backend("GFNI"), Backend::kGfni);
  EXPECT_EQ(parse_backend("Avx512"), Backend::kAvx512);
  EXPECT_EQ(parse_backend("SSSE3"), Backend::kSsse3);
  EXPECT_EQ(parse_backend("Scalar"), Backend::kScalar);
}

TEST(EcBackend, ResolveOverridePolicy) {
  // Empty / auto mean "use detection"; unknown names fail loudly with the
  // valid choices instead of silently falling back.
  EXPECT_FALSE(resolve_backend_override("").has_value());
  EXPECT_FALSE(resolve_backend_override("auto").has_value());
  EXPECT_FALSE(resolve_backend_override("AUTO").has_value());
  EXPECT_EQ(resolve_backend_override("scalar"), Backend::kScalar);
  EXPECT_THROW(resolve_backend_override("bogus"), PreconditionError);
  EXPECT_THROW(resolve_backend_override("avx-512"), PreconditionError);
  try {
    resolve_backend_override("bogus");
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string_view(e.what()).find("valid:"), std::string_view::npos);
    EXPECT_NE(std::string_view(e.what()).find("gfni"), std::string_view::npos);
  }
  for (auto b : all_backends()) {
    if (backend_supported(b))
      EXPECT_EQ(resolve_backend_override(to_string(b)), b);
    else
      EXPECT_THROW(resolve_backend_override(to_string(b)), PreconditionError);
  }
}

TEST(EcBackend, ScalarAlwaysSupportedAndDetectIsSupported) {
  EXPECT_TRUE(backend_supported(Backend::kScalar));
  EXPECT_TRUE(backend_supported(detect_backend()));
  EXPECT_TRUE(backend_supported(active_backend()));
}

TEST(EcBackend, ForceBackendSwitchesDispatch) {
  for (auto b : supported()) {
    ScopedBackend scope(b);
    EXPECT_EQ(active_backend(), b);
    EXPECT_EQ(kernels().backend, b);
  }
}

TEST(EcBackend, ForceUnsupportedThrows) {
  for (auto b : all_backends()) {
    if (backend_supported(b)) continue;
    EXPECT_THROW(force_backend(b), PreconditionError) << to_string(b);
    return;
  }
  GTEST_SKIP() << "all backends supported here";
}

TEST(EcBackend, EnvOverrideRespectedWhenSupported) {
  // active_backend() resolves from MLEC_EC_BACKEND on first use; when CI
  // forces a backend it must actually be the one dispatched.
  // Read-only getenv on the single test thread.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* env = std::getenv("MLEC_EC_BACKEND");
  if (env == nullptr || std::string_view(env) == "auto" || *env == '\0')
    GTEST_SKIP() << "no MLEC_EC_BACKEND set";
  const auto parsed = parse_backend(env);
  if (!parsed.has_value() || !backend_supported(*parsed))
    GTEST_SKIP() << "override not applicable on this host";
  EXPECT_EQ(active_backend(), *parsed);
}

TEST(EcFieldMath, MulSlowMatchesGfMul) {
  for (unsigned a = 0; a < 256; ++a)
    for (unsigned b = 0; b < 256; ++b)
      ASSERT_EQ(mul_slow(static_cast<byte_t>(a), static_cast<byte_t>(b)),
                gf::mul(static_cast<byte_t>(a), static_cast<byte_t>(b)))
          << "a=" << a << " b=" << b;
}

TEST(EcFieldMath, MakeMulTableMatchesGf) {
  for (unsigned c = 0; c < 256; ++c) {
    const auto ours = make_mul_table(static_cast<byte_t>(c));
    const auto theirs = gf::make_mul_table(static_cast<byte_t>(c));
    ASSERT_EQ(ours.lo, theirs.lo) << "c=" << c;
    ASSERT_EQ(ours.hi, theirs.hi) << "c=" << c;
  }
}

class EcKernelParity : public ::testing::TestWithParam<Backend> {};

TEST_P(EcKernelParity, MulAccMatchesNaiveGfMul) {
  MLEC_SKIP_IF_UNSUPPORTED(GetParam());
  const auto& kern = kernels_for(GetParam());
  Rng rng(101);
  for (const byte_t c : {byte_t{0}, byte_t{1}, byte_t{2}, byte_t{0x57}, byte_t{0xff}}) {
    const auto table = make_mul_table(c);
    for (std::size_t len : kLengths) {
      for (std::size_t off : kOffsets) {
        const auto src = random_buffer(off + len, rng);
        auto dst = random_buffer(off + len, rng);
        auto expect = dst;
        for (std::size_t i = 0; i < len; ++i)
          expect[off + i] = static_cast<byte_t>(expect[off + i] ^ gf::mul(c, src[off + i]));
        kern.mul_acc(table, src.data() + off, dst.data() + off, len);
        ASSERT_EQ(dst, expect) << "c=" << unsigned(c) << " len=" << len << " off=" << off;
      }
    }
  }
}

TEST_P(EcKernelParity, MulAssignMatchesNaiveGfMul) {
  MLEC_SKIP_IF_UNSUPPORTED(GetParam());
  const auto& kern = kernels_for(GetParam());
  Rng rng(202);
  for (const byte_t c : {byte_t{0}, byte_t{3}, byte_t{0x8e}, byte_t{0xfe}}) {
    const auto table = make_mul_table(c);
    for (std::size_t len : kLengths) {
      for (std::size_t off : kOffsets) {
        const auto src = random_buffer(off + len, rng);
        auto dst = random_buffer(off + len, rng);
        auto expect = dst;
        for (std::size_t i = 0; i < len; ++i) expect[off + i] = gf::mul(c, src[off + i]);
        kern.mul_assign(table, src.data() + off, dst.data() + off, len);
        ASSERT_EQ(dst, expect) << "c=" << unsigned(c) << " len=" << len << " off=" << off;
      }
    }
  }
}

TEST_P(EcKernelParity, FusedDotMatchesNaiveGfMul) {
  MLEC_SKIP_IF_UNSUPPORTED(GetParam());
  const auto& kern = kernels_for(GetParam());
  Rng rng(303);
  const std::vector<std::pair<std::size_t, std::size_t>> shapes{
      {1, 1}, {3, 1}, {10, 2}, {17, 3}, {5, 7}, {4, 9}};
  for (const auto& [k, p] : shapes) {
    std::vector<byte_t> coeffs(p * k);
    for (auto& c : coeffs) c = static_cast<byte_t>(rng.uniform_below(256));
    std::vector<MulTable> tables;
    for (const byte_t c : coeffs) tables.push_back(make_mul_table(c));
    for (std::size_t len : {std::size_t{0}, std::size_t{1}, std::size_t{17}, std::size_t{64},
                            std::size_t{257}, std::size_t{4097}}) {
      for (const bool accumulate : {false, true}) {
        const std::size_t off = (len + k + p) % 16;  // vary alignment too
        std::vector<std::vector<byte_t>> src, dst, expect;
        std::vector<const byte_t*> sp;
        std::vector<byte_t*> dp;
        for (std::size_t c = 0; c < k; ++c) {
          src.push_back(random_buffer(off + len, rng));
          sp.push_back(src.back().data() + off);
        }
        for (std::size_t r = 0; r < p; ++r) dst.push_back(random_buffer(off + len, rng));
        expect = dst;
        for (std::size_t r = 0; r < p; ++r) dp.push_back(dst[r].data() + off);
        for (std::size_t r = 0; r < p; ++r)
          for (std::size_t i = 0; i < len; ++i) {
            byte_t acc = accumulate ? expect[r][off + i] : byte_t{0};
            for (std::size_t c = 0; c < k; ++c)
              acc = static_cast<byte_t>(acc ^ gf::mul(coeffs[r * k + c], src[c][off + i]));
            expect[r][off + i] = acc;
          }
        kern.dot(tables.data(), k, p, sp.data(), dp.data(), len, accumulate);
        ASSERT_EQ(dst, expect) << "k=" << k << " p=" << p << " len=" << len
                               << " accumulate=" << accumulate;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, EcKernelParity, ::testing::ValuesIn(all_backends()),
                         [](const auto& info) { return to_string(info.param); });

class EcRoundTrip : public ::testing::TestWithParam<Backend> {};

TEST_P(EcRoundTrip, RsEncodeCorruptReconstruct) {
  MLEC_SKIP_IF_UNSUPPORTED(GetParam());
  ScopedBackend scope(GetParam());
  Rng rng(404);
  for (const auto& [k, p] : std::vector<std::pair<std::size_t, std::size_t>>{{10, 2}, {17, 3}}) {
    const gf::RsCode code(k, p);
    const std::size_t len = 1021;  // odd length through the fused path
    std::vector<std::vector<byte_t>> data;
    for (std::size_t i = 0; i < k; ++i) data.push_back(random_buffer(len, rng));
    std::vector<std::vector<byte_t>> parity(p, std::vector<byte_t>(len, 0));
    code.encode(data, parity);

    std::vector<std::vector<byte_t>> shards = data;
    shards.insert(shards.end(), parity.begin(), parity.end());
    for (int round = 0; round < 8; ++round) {
      const std::size_t losses = 1 + rng.uniform_below(p);
      const auto lost = rng.sample_without_replacement(k + p, losses);
      auto damaged = shards;
      std::vector<std::size_t> lost_idx(lost.begin(), lost.end());
      for (auto idx : lost_idx) std::fill(damaged[idx].begin(), damaged[idx].end(), 0xAA);
      code.decode(damaged, lost_idx);
      for (std::size_t i = 0; i < k + p; ++i)
        ASSERT_EQ(damaged[i], shards[i]) << "k=" << k << " p=" << p << " round=" << round;
    }
  }
}

TEST_P(EcRoundTrip, ParityIdenticalAcrossBackends) {
  // Encode under this backend and under scalar: identical parity bytes.
  MLEC_SKIP_IF_UNSUPPORTED(GetParam());
  Rng rng(505);
  const gf::RsCode code(10, 4);
  const std::size_t len = 4097;
  std::vector<std::vector<byte_t>> data;
  for (std::size_t i = 0; i < 10; ++i) data.push_back(random_buffer(len, rng));
  std::vector<std::vector<byte_t>> parity_scalar(4, std::vector<byte_t>(len, 0));
  std::vector<std::vector<byte_t>> parity_backend(4, std::vector<byte_t>(len, 0));
  {
    ScopedBackend scope(Backend::kScalar);
    code.encode(data, parity_scalar);
  }
  {
    ScopedBackend scope(GetParam());
    code.encode(data, parity_backend);
  }
  EXPECT_EQ(parity_scalar, parity_backend);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, EcRoundTrip, ::testing::ValuesIn(all_backends()),
                         [](const auto& info) { return to_string(info.param); });

TEST(EcStream, ParallelEncodeMatchesSerial) {
  Rng rng(606);
  ThreadPool pool(4);
  const gf::RsCode code(10, 3);
  const std::size_t len = 1 << 20 | 37;  // force an odd tail slice
  std::vector<std::vector<byte_t>> data;
  for (std::size_t i = 0; i < 10; ++i) data.push_back(random_buffer(len, rng));
  std::vector<std::vector<byte_t>> serial(3, std::vector<byte_t>(len, 0));
  std::vector<std::vector<byte_t>> parallel(3, std::vector<byte_t>(len, 0));
  code.encode(data, serial);

  std::vector<std::span<const byte_t>> d(data.begin(), data.end());
  std::vector<std::span<byte_t>> q(parallel.begin(), parallel.end());
  StreamOptions opts;
  opts.min_slice_bytes = 4096;  // many slices even on small pools
  ASSERT_TRUE(encode_parallel(code.encode_plan(), std::span<const std::span<const byte_t>>(d),
                              std::span<const std::span<byte_t>>(q), pool, {}, opts));
  EXPECT_EQ(serial, parallel);
}

TEST(EcStream, RsEncodeParallelWrapper) {
  Rng rng(707);
  ThreadPool pool(3);
  const gf::RsCode code(5, 2);
  const std::size_t len = 300001;
  std::vector<std::vector<byte_t>> data;
  for (std::size_t i = 0; i < 5; ++i) data.push_back(random_buffer(len, rng));
  std::vector<std::vector<byte_t>> serial(2, std::vector<byte_t>(len, 0));
  std::vector<std::vector<byte_t>> parallel(2, std::vector<byte_t>(len, 0));
  code.encode(data, serial);
  std::vector<std::span<const byte_t>> d(data.begin(), data.end());
  std::vector<std::span<byte_t>> q(parallel.begin(), parallel.end());
  ASSERT_TRUE(code.encode_parallel(std::span<const std::span<const byte_t>>(d),
                                   std::span<const std::span<byte_t>>(q), pool));
  EXPECT_EQ(serial, parallel);
}

TEST(EcStream, StoppedTokenTruncates) {
  ThreadPool pool(2);
  const gf::RsCode code(4, 2);
  StopSource source;
  source.request_stop();
  std::vector<std::vector<byte_t>> data(4, std::vector<byte_t>(1024, 1));
  std::vector<std::vector<byte_t>> parity(2, std::vector<byte_t>(1024, 0));
  std::vector<std::span<const byte_t>> d(data.begin(), data.end());
  std::vector<std::span<byte_t>> q(parity.begin(), parity.end());
  EXPECT_FALSE(code.encode_parallel(std::span<const std::span<const byte_t>>(d),
                                    std::span<const std::span<byte_t>>(q), pool,
                                    source.token()));
}

TEST(EcPlan, StoresCoefficientsRowMajor) {
  const std::vector<byte_t> coeffs{1, 2, 3, 4, 5, 6};
  const EncodePlan plan(2, 3, coeffs);
  EXPECT_EQ(plan.rows(), 2u);
  EXPECT_EQ(plan.cols(), 3u);
  EXPECT_EQ(plan.coefficient(0, 0), 1);
  EXPECT_EQ(plan.coefficient(1, 2), 6);
  EXPECT_THROW(EncodePlan(2, 3, std::vector<byte_t>{1, 2}), PreconditionError);
}

}  // namespace
}  // namespace mlec::ec
