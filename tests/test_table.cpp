#include "util/table.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace mlec {
namespace {

TEST(Table, AsciiAlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.to_ascii("title");
  EXPECT_NE(out.find("title"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
}

TEST(Table, CsvRoundTrip) {
  Table t({"a", "b", "c"});
  t.add_row({"1", "2", "3"});
  EXPECT_EQ(t.to_csv(), "a,b,c\n1,2,3\n");
}

TEST(Table, RowArityEnforced) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), PreconditionError);
}

TEST(Table, EmptyHeadersRejected) { EXPECT_THROW(Table({}), PreconditionError); }

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(0.0), "0");
  EXPECT_EQ(Table::num(1.5), "1.5");
  EXPECT_EQ(Table::num(2.0), "2");
  EXPECT_EQ(Table::num(1234.5678, 2), "1234.57");
  // Extremes go scientific.
  EXPECT_NE(Table::num(1.23e-9).find('e'), std::string::npos);
  EXPECT_NE(Table::num(4.5e12).find('e'), std::string::npos);
}

TEST(Heatmap, RendersLogBuckets) {
  // Rows: y=2 then y=1; columns x=1..3.
  const std::vector<std::vector<double>> values{{1.0, 0.05, 1e-7}, {0.0, 1e-3, 0.5}};
  const std::string out =
      HeatmapRenderer::render(values, {2, 1}, {1, 2, 3}, "test map");
  EXPECT_NE(out.find("test map"), std::string::npos);
  // 1.0 -> '0'; 0.05 -> '1'; 1e-7 -> capped '6'; 0 -> '.'; 1e-3 -> '3'; 0.5 -> '0'.
  EXPECT_NE(out.find("2 | 0 1 6"), std::string::npos);
  EXPECT_NE(out.find("1 | . 3 0"), std::string::npos);
}

TEST(Heatmap, ShapeMismatchRejected) {
  EXPECT_THROW(HeatmapRenderer::render({{1.0}}, {1, 2}, {1}, "bad"), PreconditionError);
}

}  // namespace
}  // namespace mlec
