#include "sim/indexed_heap.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <queue>
#include <set>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace mlec {
namespace {

TEST(IndexedMinHeap, StartsEmpty) {
  IndexedMinHeap heap;
  heap.resize(8);
  EXPECT_TRUE(heap.empty());
  EXPECT_EQ(heap.size(), 0u);
  EXPECT_EQ(heap.universe(), 8u);
  for (std::uint32_t id = 0; id < 8; ++id) EXPECT_FALSE(heap.contains(id));
  EXPECT_FALSE(heap.remove(3));
}

TEST(IndexedMinHeap, PushPopOrdersByKeyThenId) {
  IndexedMinHeap heap;
  heap.resize(8);
  heap.push_or_update(5, 3.0);
  heap.push_or_update(1, 1.0);
  heap.push_or_update(7, 2.0);
  heap.push_or_update(2, 2.0);  // same key as 7: lower id pops first
  std::vector<std::uint32_t> order;
  while (!heap.empty()) {
    order.push_back(heap.top_id());
    heap.pop();
  }
  EXPECT_EQ(order, (std::vector<std::uint32_t>{1, 2, 7, 5}));
}

TEST(IndexedMinHeap, UpdateMovesEntryBothDirections) {
  IndexedMinHeap heap;
  heap.resize(4);
  heap.push_or_update(0, 10.0);
  heap.push_or_update(1, 20.0);
  heap.push_or_update(2, 30.0);
  EXPECT_EQ(heap.size(), 3u);

  heap.push_or_update(2, 5.0);  // decrease-key
  EXPECT_EQ(heap.size(), 3u);
  EXPECT_EQ(heap.top_id(), 2u);
  EXPECT_EQ(heap.key_of(2), 5.0);

  heap.push_or_update(2, 25.0);  // increase-key
  EXPECT_EQ(heap.top_id(), 0u);
  EXPECT_EQ(heap.key_of(2), 25.0);
}

TEST(IndexedMinHeap, RemoveDropsOnlyThatEntry) {
  IndexedMinHeap heap;
  heap.resize(4);
  heap.push_or_update(0, 1.0);
  heap.push_or_update(1, 2.0);
  heap.push_or_update(2, 3.0);
  EXPECT_TRUE(heap.remove(1));
  EXPECT_FALSE(heap.contains(1));
  EXPECT_FALSE(heap.remove(1));
  EXPECT_EQ(heap.size(), 2u);
  EXPECT_EQ(heap.top_id(), 0u);
  heap.pop();
  EXPECT_EQ(heap.top_id(), 2u);
}

TEST(IndexedMinHeap, ClearForgetsEverything) {
  IndexedMinHeap heap;
  heap.resize(4);
  heap.push_or_update(0, 1.0);
  heap.push_or_update(3, 2.0);
  heap.clear();
  EXPECT_TRUE(heap.empty());
  EXPECT_FALSE(heap.contains(0));
  EXPECT_FALSE(heap.contains(3));
  heap.push_or_update(3, 0.5);  // usable again after clear
  EXPECT_EQ(heap.top_id(), 3u);
}

/// Reference model: an ordered set of (key, id) — exactly the heap's
/// contract, including the deterministic (key, id) tie-break.
class Reference {
 public:
  explicit Reference(std::size_t universe) : key_(universe, 0.0), in_(universe, false) {}

  void push_or_update(std::uint32_t id, double key) {
    if (in_[id]) entries_.erase({key_[id], id});
    entries_.insert({key, id});
    key_[id] = key;
    in_[id] = true;
  }
  bool remove(std::uint32_t id) {
    if (!in_[id]) return false;
    entries_.erase({key_[id], id});
    in_[id] = false;
    return true;
  }
  bool contains(std::uint32_t id) const { return in_[id]; }
  double key_of(std::uint32_t id) const { return key_[id]; }
  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  std::pair<double, std::uint32_t> top() const { return *entries_.begin(); }
  void pop_top() {
    auto it = entries_.begin();
    in_[it->second] = false;
    entries_.erase(it);
  }

 private:
  std::set<std::pair<double, std::uint32_t>> entries_;
  std::vector<double> key_;
  std::vector<bool> in_;
};

TEST(IndexedMinHeap, RandomizedDifferentialAgainstOrderedSet) {
  constexpr std::size_t kUniverse = 64;
  IndexedMinHeap heap;
  heap.resize(kUniverse);
  Reference ref(kUniverse);
  Rng rng(0xfeedULL);

  for (int step = 0; step < 50000; ++step) {
    const std::uint64_t op = rng.uniform_below(10);
    const auto id = static_cast<std::uint32_t>(rng.uniform_below(kUniverse));
    if (op < 4) {  // push or update (fresh key; may decrease or increase)
      const double key = rng.uniform() * 100.0;
      heap.push_or_update(id, key);
      ref.push_or_update(id, key);
    } else if (op < 6) {  // remove by id
      EXPECT_EQ(heap.remove(id), ref.remove(id));
    } else if (op < 8) {  // pop the minimum
      ASSERT_EQ(heap.empty(), ref.empty());
      if (!heap.empty()) {
        const auto [key, top] = ref.top();
        EXPECT_EQ(heap.top_id(), top);
        EXPECT_EQ(heap.top_key(), key);
        heap.pop();
        ref.pop_top();
      }
    } else if (op < 9) {  // targeted decrease-key on the current max-ish entry
      if (ref.contains(id)) {
        const double key = ref.key_of(id) / 2.0;
        heap.push_or_update(id, key);
        ref.push_or_update(id, key);
      }
    } else {  // point queries
      ASSERT_EQ(heap.contains(id), ref.contains(id));
      if (ref.contains(id)) EXPECT_EQ(heap.key_of(id), ref.key_of(id));
    }
    ASSERT_EQ(heap.size(), ref.size());
  }

  // Drain: the full pop sequence must match the ordered set exactly.
  while (!ref.empty()) {
    const auto [key, top] = ref.top();
    ASSERT_FALSE(heap.empty());
    EXPECT_EQ(heap.top_id(), top);
    EXPECT_EQ(heap.top_key(), key);
    heap.pop();
    ref.pop_top();
  }
  EXPECT_TRUE(heap.empty());
}

TEST(IndexedMinHeap, MatchesPriorityQueueSemanticsWithoutUpdates) {
  // Pure push/pop (no decrease-key) must behave like std::priority_queue
  // over (key, id) min-ordering.
  using Entry = std::pair<double, std::uint32_t>;
  IndexedMinHeap heap;
  heap.resize(512);
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  Rng rng(99);
  for (std::uint32_t id = 0; id < 512; ++id) {
    const double key = rng.uniform();
    heap.push_or_update(id, key);
    pq.push({key, id});
  }
  while (!pq.empty()) {
    ASSERT_FALSE(heap.empty());
    EXPECT_EQ(heap.top_key(), pq.top().first);
    EXPECT_EQ(heap.top_id(), pq.top().second);
    heap.pop();
    pq.pop();
  }
  EXPECT_TRUE(heap.empty());
}

}  // namespace
}  // namespace mlec
