#include "math/combin.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace mlec {
namespace {

TEST(LogFactorial, SmallValuesExact) {
  EXPECT_DOUBLE_EQ(log_factorial(0), 0.0);
  EXPECT_DOUBLE_EQ(log_factorial(1), 0.0);
  EXPECT_NEAR(log_factorial(5), std::log(120.0), 1e-12);
  EXPECT_NEAR(log_factorial(10), std::log(3628800.0), 1e-10);
}

TEST(LogFactorial, LargeValuesUseLgamma) {
  // Consistency across the table boundary.
  EXPECT_NEAR(log_factorial(5000), std::lgamma(5001.0), 1e-6);
}

TEST(Choose, MatchesPascal) {
  for (std::int64_t n = 0; n <= 20; ++n)
    for (std::int64_t k = 1; k < n; ++k)
      EXPECT_NEAR(choose(n, k), choose(n - 1, k - 1) + choose(n - 1, k), 1e-6 * choose(n, k));
}

TEST(Choose, EdgeCases) {
  EXPECT_DOUBLE_EQ(choose(10, 0), 1.0);
  EXPECT_DOUBLE_EQ(choose(10, 10), 1.0);
  EXPECT_DOUBLE_EQ(choose(10, 11), 0.0);
  EXPECT_DOUBLE_EQ(choose(10, -1), 0.0);
  EXPECT_NEAR(choose(57600, 2), 57600.0 * 57599.0 / 2.0, 1e3);
}

TEST(Hypergeom, PmfSumsToOne) {
  double total = 0;
  for (std::int64_t k = 0; k <= 20; ++k) total += hypergeom_pmf(120, 4, 20, k);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Hypergeom, KnownValue) {
  // P(all 4 failed disks land inside a specific 20-chunk stripe of a 120-disk
  // pool) = (20*19*18*17)/(120*119*118*117) — the paper's Dp lost-stripe rate.
  const double expected = (20.0 * 19 * 18 * 17) / (120.0 * 119 * 118 * 117);
  EXPECT_NEAR(hypergeom_pmf(120, 4, 20, 4), expected, 1e-15);
  EXPECT_NEAR(hypergeom_tail_geq(120, 4, 20, 4), expected, 1e-15);
}

TEST(Hypergeom, TailMonotoneAndBounded) {
  double prev = 1.0;
  for (std::int64_t t = 0; t <= 10; ++t) {
    const double tail = hypergeom_tail_geq(100, 30, 10, t);
    EXPECT_LE(tail, prev + 1e-12);
    EXPECT_GE(tail, 0.0);
    prev = tail;
  }
  EXPECT_DOUBLE_EQ(hypergeom_tail_geq(100, 30, 10, 0), 1.0);
  EXPECT_DOUBLE_EQ(hypergeom_tail_geq(100, 30, 10, 11), 0.0);
}

TEST(Hypergeom, RejectsBadArguments) {
  EXPECT_THROW(hypergeom_pmf(10, 11, 5, 2), PreconditionError);
  EXPECT_THROW(hypergeom_pmf(10, 5, 11, 2), PreconditionError);
}

TEST(Binomial, MatchesDirectFormula) {
  EXPECT_NEAR(binomial_pmf(10, 0.3, 3), 0.266827932, 1e-9);
  EXPECT_NEAR(binomial_tail_geq(10, 0.3, 0), 1.0, 1e-12);
  EXPECT_NEAR(binomial_tail_geq(4, 0.5, 4), 0.0625, 1e-12);
}

TEST(Binomial, DegenerateP) {
  EXPECT_DOUBLE_EQ(binomial_pmf(5, 0.0, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(5, 1.0, 5), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(5, 1.0, 3), 0.0);
}

// Brute-force Poisson-binomial by enumerating all outcomes.
double brute_pb_tail(const std::vector<double>& probs, std::size_t t) {
  const std::size_t n = probs.size();
  double tail = 0;
  for (std::size_t mask = 0; mask < (1u << n); ++mask) {
    std::size_t ones = 0;
    double prob = 1.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        prob *= probs[i];
        ++ones;
      } else {
        prob *= 1.0 - probs[i];
      }
    }
    if (ones >= t) tail += prob;
  }
  return tail;
}

class PoissonBinomialParam : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PoissonBinomialParam, TailMatchesEnumeration) {
  const std::vector<double> probs{0.1, 0.7, 0.33, 0.9, 0.02, 0.5, 0.25};
  const std::size_t t = GetParam();
  EXPECT_NEAR(poisson_binomial_tail_geq(probs, static_cast<std::int64_t>(t)),
              brute_pb_tail(probs, t), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(AllThresholds, PoissonBinomialParam,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7, 8));

TEST(PoissonBinomial, CappedPmfLumpsTail) {
  const std::vector<double> probs{0.5, 0.5, 0.5, 0.5};
  const auto pmf = poisson_binomial_pmf(probs, 2);
  ASSERT_EQ(pmf.size(), 3u);
  EXPECT_NEAR(pmf[0], 0.0625, 1e-12);
  EXPECT_NEAR(pmf[1], 0.25, 1e-12);
  EXPECT_NEAR(pmf[2], 0.6875, 1e-12);  // P(X >= 2)
}

TEST(PoissonBinomial, FullPmfNormalized) {
  const std::vector<double> probs{0.2, 0.4, 0.9, 0.01};
  const auto pmf = poisson_binomial_pmf(probs);
  double total = 0;
  for (double p : pmf) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(LogAdd, MatchesDirect) {
  const double a = std::log(3.0), b = std::log(5.0);
  EXPECT_NEAR(log_add(a, b), std::log(8.0), 1e-12);
  const double ninf = -std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(log_add(ninf, b), b);
  EXPECT_DOUBLE_EQ(log_add(a, ninf), a);
}

}  // namespace
}  // namespace mlec
