#include "sim/repair_planner.hpp"

#include <gtest/gtest.h>

#include "analysis/traffic.hpp"

namespace mlec {
namespace {

DataCenterConfig toy_dc() {
  DataCenterConfig dc;
  dc.racks = 6;
  dc.enclosures_per_rack = 2;
  dc.disks_per_enclosure = 6;
  dc.disk_capacity_tb = 1.28e-6;  // 10 chunks per disk
  dc.chunk_kb = 128.0;
  return dc;
}

const MlecCode kToyCode{{2, 1}, {2, 1}};

TEST(RepairPlanner, NoFailuresNoTraffic) {
  const Topology topo(toy_dc());
  const StripeMap map(topo, kToyCode, MlecScheme::kCC, 4);
  for (auto method : kAllRepairMethods) {
    const auto plan = plan_repair(map, {}, method);
    EXPECT_EQ(plan.network_chunks(), 0.0);
    EXPECT_EQ(plan.local_chunks(), 0.0);
    EXPECT_EQ(plan.catastrophic_pools, 0u);
  }
}

TEST(RepairPlanner, SingleFailureRepairsLocally) {
  const Topology topo(toy_dc());
  const StripeMap map(topo, kToyCode, MlecScheme::kCC, 4);
  const auto& stripe = map.stripes().front();
  for (auto method : kAllRepairMethods) {
    const auto plan = plan_repair(map, {stripe.locals[0].disks[0]}, method);
    EXPECT_EQ(plan.network_chunks(), 0.0) << to_string(method);
    EXPECT_GT(plan.local_chunks(), 0.0) << to_string(method);
  }
}

TEST(RepairPlanner, CatastrophicPoolHandGradedCounts) {
  // One network stripe per pool keeps the arithmetic inspectable.
  const Topology topo(toy_dc());
  const StripeMap map(topo, kToyCode, MlecScheme::kCC, 1);
  const auto& stripe = map.stripes().front();
  // Kill p_l+1 = 2 chunks of one local stripe: its pool is catastrophic.
  const std::vector<DiskId> failed{stripe.locals[0].disks[0], stripe.locals[0].disks[1]};

  // The pool hosts exactly the stripes materialized in it. Count them.
  const LocalPoolId pool = stripe.locals[0].pool;
  double pool_stripes = 0, pool_failed_chunks = 0;
  for (const auto& s : map.stripes())
    for (const auto& l : s.locals)
      if (l.pool == pool) {
        pool_stripes += 1;
        for (DiskId d : l.disks)
          pool_failed_chunks += (d == failed[0] || d == failed[1]) ? 1 : 0;
      }

  // R_ALL: every chunk of the pool over the network, k_n reads + 1 write.
  const auto rall = plan_repair(map, failed, RepairMethod::kRepairAll);
  EXPECT_DOUBLE_EQ(rall.network_write_chunks, pool_stripes * 3);
  EXPECT_DOUBLE_EQ(rall.network_read_chunks, pool_stripes * 3 * 2);
  EXPECT_EQ(rall.catastrophic_pools, 1u);

  // R_FCO: only failed chunks in the pool, still over the network.
  const auto rfco = plan_repair(map, failed, RepairMethod::kRepairFailedOnly);
  EXPECT_DOUBLE_EQ(rfco.network_write_chunks, pool_failed_chunks);
  EXPECT_DOUBLE_EQ(rfco.network_read_chunks, pool_failed_chunks * 2);

  // R_MIN: one network chunk per lost stripe (2 failures - p_l = 1), rest local.
  const auto rmin = plan_repair(map, failed, RepairMethod::kRepairMinimum);
  EXPECT_DOUBLE_EQ(rmin.network_write_chunks, static_cast<double>(rmin.lost_local_stripes));
  EXPECT_GT(rmin.local_chunks(), 0.0);
}

class PlannerOrdering : public ::testing::TestWithParam<MlecScheme> {};

TEST_P(PlannerOrdering, MethodsAreMonotoneInNetworkTraffic) {
  const Topology topo(toy_dc());
  const StripeMap map(topo, kToyCode, GetParam(), 5);
  Rng rng(42 + static_cast<int>(GetParam()));
  for (int round = 0; round < 20; ++round) {
    // Random failures concentrated in one enclosure to trigger catastrophes.
    const std::size_t count = 2 + rng.uniform_below(3);
    std::vector<DiskId> failed;
    const auto base = static_cast<DiskId>(rng.uniform_below(12) * 6);
    for (auto pos : rng.sample_without_replacement(6, count))
      failed.push_back(base + static_cast<DiskId>(pos));

    const auto rall = plan_repair(map, failed, RepairMethod::kRepairAll);
    const auto rfco = plan_repair(map, failed, RepairMethod::kRepairFailedOnly);
    const auto rhyb = plan_repair(map, failed, RepairMethod::kRepairHybrid);
    const auto rmin = plan_repair(map, failed, RepairMethod::kRepairMinimum);
    EXPECT_GE(rall.network_chunks(), rfco.network_chunks());
    EXPECT_GE(rfco.network_chunks(), rhyb.network_chunks());
    EXPECT_GE(rhyb.network_chunks(), rmin.network_chunks());
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, PlannerOrdering, ::testing::ValuesIn(kAllMlecSchemes));

TEST(RepairPlanner, MatchesClosedFormOnInjection) {
  // Inject p_l+1 failures into one clustered pool and compare the planner's
  // chunk counts against the analytic Figure 8 model, scaled to this
  // topology's chunk density.
  const auto dc = toy_dc();
  const Topology topo(dc);
  // Stripe density: a (2+1) Cp pool of 3 disks holds 10 local stripes at
  // full density; materialize exactly that many per network pool.
  const StripeMap map(topo, kToyCode, MlecScheme::kCC, 10);
  const auto pool_disks = map.pool_disks(0);
  const std::vector<DiskId> failed{pool_disks[0], pool_disks[1]};

  for (auto method : kAllRepairMethods) {
    const auto plan = plan_repair(map, failed, method);
    const auto model = catastrophic_injection_traffic(dc, kToyCode, MlecScheme::kCC, method);
    const double plan_tb = plan.network_tb(dc.chunk_kb);
    EXPECT_NEAR(plan_tb, model.cross_rack_tb(), model.cross_rack_tb() * 0.05 + 1e-12)
        << to_string(method);
  }
}

TEST(RepairPlanner, ReportsUnrecoverableStripes) {
  const Topology topo(toy_dc());
  const StripeMap map(topo, kToyCode, MlecScheme::kCC, 1);
  const auto& stripe = map.stripes().front();
  const std::vector<DiskId> failed{stripe.locals[0].disks[0], stripe.locals[0].disks[1],
                                   stripe.locals[1].disks[0], stripe.locals[1].disks[1]};
  const auto plan = plan_repair(map, failed, RepairMethod::kRepairFailedOnly);
  EXPECT_GE(plan.unrecoverable_network_stripes, 1u);
}

}  // namespace
}  // namespace mlec
