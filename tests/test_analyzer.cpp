#include "core/analyzer.hpp"

#include <gtest/gtest.h>

namespace mlec {
namespace {

TEST(Analyzer, PaperDefaultsReportEndToEnd) {
  const MlecAnalyzer analyzer{SystemSpec{}};
  const std::string report = analyzer.report();
  EXPECT_NE(report.find("(10+2)/(17+3)"), std::string::npos);
  EXPECT_NE(report.find("57600 disks"), std::string::npos);
  EXPECT_NE(report.find("R_MIN"), std::string::npos);
  EXPECT_NE(report.find("durability"), std::string::npos);
}

TEST(Analyzer, NumbersAgreeWithUnderlyingModels) {
  SystemSpec spec;
  spec.scheme = MlecScheme::kCD;
  spec.repair = RepairMethod::kRepairHybrid;
  const MlecAnalyzer analyzer(spec);

  EXPECT_NEAR(analyzer.repair_bandwidth().single_disk_mbps, 264.0, 1.0);
  EXPECT_NEAR(analyzer.single_disk_repair_hours(), 21.0, 0.1);
  EXPECT_NEAR(analyzer.catastrophic_repair_hours(), 2666.7, 1.0);
  EXPECT_NEAR(analyzer.injection_traffic().cross_rack_tb(), 3.11, 0.05);
  EXPECT_GT(analyzer.durability().nines, 25.0);
  EXPECT_GT(analyzer.method_repair_time().local_hours, 0.0);
}

TEST(Analyzer, BurstPdlDelegates) {
  const MlecAnalyzer analyzer{SystemSpec{}};
  EXPECT_EQ(analyzer.burst_pdl(1, 60, 50), 0.0);  // p_n racks always survive
}

TEST(Analyzer, AnnualTrafficIsTiny) {
  SystemSpec spec;
  spec.scheme = MlecScheme::kCD;
  const MlecAnalyzer analyzer(spec);
  // "A few TB every thousand of years" (paper §5.1.4).
  EXPECT_LT(analyzer.annual_traffic().cross_rack_tb_per_year, 0.1);
}

TEST(Analyzer, SplittingPathAccepted) {
  const MlecAnalyzer analyzer{SystemSpec{}};
  LocalPoolStats stage1;
  stage1.cat_rate_per_pool_year = 1e-7;
  stage1.lost_stripe_fraction = 0.4;
  const auto r = analyzer.durability(stage1);
  EXPECT_NEAR(r.stage1.cat_rate_per_pool_year, 1e-7, 1e-15);
}

TEST(Analyzer, InvalidSpecRejected) {
  SystemSpec spec;
  spec.afr = 0.0;
  EXPECT_THROW(MlecAnalyzer{spec}, PreconditionError);
  spec = {};
  spec.code.local = {16, 3};  // 120 % 19 != 0 under C/C
  EXPECT_THROW(MlecAnalyzer{spec}, PreconditionError);
}

}  // namespace
}  // namespace mlec
