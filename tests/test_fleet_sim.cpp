#include "analysis/fleet_sim.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/burst_pdl.hpp"
#include "analysis/durability.hpp"
#include "sim/system_sim.hpp"
#include "util/units.hpp"

namespace mlec {
namespace {

/// A hot, shrunken fleet where a one-year mission sees real action:
/// 6 racks x 2 enclosures x 20 disks, (2+1)/(3+1), AFR 40%.
FleetSimConfig hot_fleet(MlecScheme scheme) {
  FleetSimConfig cfg;
  cfg.dc.racks = 6;
  cfg.dc.enclosures_per_rack = 2;
  cfg.dc.disks_per_enclosure = 20;
  cfg.dc.disk_capacity_tb = 20.0;
  cfg.code = {{2, 1}, {3, 1}};
  cfg.scheme = scheme;
  cfg.failures.afr = 0.4;
  return cfg;
}

TEST(FleetSim, NoFailuresNothingHappens) {
  auto cfg = hot_fleet(MlecScheme::kCC);
  cfg.failures.afr = 1e-12;
  const auto r = simulate_fleet(cfg, 50, 1);
  EXPECT_EQ(r.data_loss_missions, 0u);
  EXPECT_EQ(r.catastrophic_pool_events, 0u);
  EXPECT_EQ(r.cross_rack_tb, 0.0);
}

TEST(FleetSim, FailureCountMatchesPoissonRate) {
  auto cfg = hot_fleet(MlecScheme::kCC);
  const auto r = simulate_fleet(cfg, 200, 2);
  // 240 disks * 0.4/yr * 1 yr = 96 per mission.
  const double per_mission = static_cast<double>(r.disk_failures) / 200.0;
  EXPECT_NEAR(per_mission, 96.0, 5.0);
}

TEST(FleetSim, SameSeedIsBitIdentical) {
  const auto cfg = hot_fleet(MlecScheme::kCC);
  const auto a = simulate_fleet(cfg, 120, 7);
  const auto b = simulate_fleet(cfg, 120, 7);
  EXPECT_EQ(a.missions, b.missions);
  EXPECT_EQ(a.data_loss_missions, b.data_loss_missions);
  EXPECT_EQ(a.data_loss_events, b.data_loss_events);
  EXPECT_EQ(a.disk_failures, b.disk_failures);
  EXPECT_EQ(a.catastrophic_pool_events, b.catastrophic_pool_events);
  EXPECT_EQ(a.cross_rack_tb, b.cross_rack_tb);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.rng_draws, b.rng_draws);
}

TEST(FleetSim, SharedContextEngineMatchesPerConfigEngine) {
  const auto cfg = hot_fleet(MlecScheme::kDD);
  const auto context = make_fleet_context(cfg);
  FleetMissionEngine from_config(cfg);
  FleetMissionEngine from_context(context);
  Rng rng_a = Rng::for_substream(11, 0);
  Rng rng_b = Rng::for_substream(11, 0);
  FleetSimResult a, b;
  for (int m = 0; m < 40; ++m) {
    from_config.run_mission(rng_a, a);
    from_context.run_mission(rng_b, b);
  }
  EXPECT_EQ(a.disk_failures, b.disk_failures);
  EXPECT_EQ(a.data_loss_missions, b.data_loss_missions);
  EXPECT_EQ(a.catastrophic_pool_events, b.catastrophic_pool_events);
  EXPECT_EQ(a.cross_rack_tb, b.cross_rack_tb);
  EXPECT_EQ(rng_a.state(), rng_b.state());
}

TEST(FleetSim, PerfCountersArePopulatedAndAllocationFree) {
  const auto cfg = hot_fleet(MlecScheme::kCC);
  const auto r = simulate_fleet(cfg, 100, 5);
  // Every disk failure is an event, and pool events add more on top.
  EXPECT_GE(r.events_processed, r.disk_failures);
  EXPECT_GT(r.events_processed, 0u);
  // At least one variate per sampled failure (gap batches + disk picks).
  EXPECT_GT(r.rng_draws, r.disk_failures);
  // The pool arena is fully allocated at engine construction: the mission
  // loop never grows it.
  EXPECT_EQ(r.arena_allocations, 0u);
}

class FleetSchemes : public ::testing::TestWithParam<MlecScheme> {};

TEST_P(FleetSchemes, CatastrophesAndTrafficAccumulate) {
  auto cfg = hot_fleet(GetParam());
  cfg.method = RepairMethod::kRepairFailedOnly;
  const auto r = simulate_fleet(cfg, 300, 3);
  EXPECT_GT(r.catastrophic_pool_events, 10u);
  EXPECT_GT(r.cross_rack_tb, 0.0);
  EXPECT_GT(r.catastrophe_exposure_hours.mean(), cfg.detection_hours);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, FleetSchemes, ::testing::ValuesIn(kAllMlecSchemes));

TEST(FleetSim, RepairAllMovesMoreBytesThanRepairMin) {
  auto cfg = hot_fleet(MlecScheme::kCC);
  cfg.method = RepairMethod::kRepairAll;
  const auto rall = simulate_fleet(cfg, 200, 4);
  cfg.method = RepairMethod::kRepairMinimum;
  const auto rmin = simulate_fleet(cfg, 200, 4);
  ASSERT_GT(rall.catastrophic_pool_events, 0u);
  const double per_event_all =
      rall.cross_rack_tb / static_cast<double>(rall.catastrophic_pool_events);
  const double per_event_min =
      rmin.cross_rack_tb / static_cast<double>(rmin.catastrophic_pool_events);
  EXPECT_GT(per_event_all, per_event_min * 3.0);
}

TEST(FleetSim, MatchesDurabilityPipelineAtHighRates) {
  // The count-level simulator and the splitting/Markov pipeline should
  // agree on the catastrophic-pool rate in a regime hot enough to sample.
  auto cfg = hot_fleet(MlecScheme::kCC);
  const auto sim = simulate_fleet(cfg, 400, 5);

  DurabilityEnv env;
  env.dc = cfg.dc;
  env.afr = cfg.failures.afr;
  const auto stage1 = local_pool_stats(env, cfg.code.local, Placement::kClustered,
                                       cfg.code.local_width());
  const PoolLayout layout(cfg.dc, cfg.code, cfg.scheme);
  const double expected =
      stage1.cat_rate_per_pool_year * static_cast<double>(layout.total_local_pools());
  const double simulated = sim.catastrophes_per_system_year(cfg.mission_hours);
  EXPECT_GT(simulated, expected / 2.5);
  EXPECT_LT(simulated, expected * 2.5);
}

TEST(FleetSim, InjectedBurstMatchesBurstEngine) {
  // Inject one paper-style burst per mission; the resulting PDL should
  // match the conditional-MC burst engine's cell value.
  FleetSimConfig cfg;
  cfg.dc.racks = 12;
  cfg.dc.enclosures_per_rack = 2;
  cfg.dc.disks_per_enclosure = 12;
  cfg.dc.disk_capacity_tb = 0.00000128;  // 10 chunks/disk
  cfg.code = {{2, 1}, {2, 1}};
  cfg.scheme = MlecScheme::kDD;
  cfg.failures.afr = 1e-12;  // burst only
  cfg.mission_hours = 10.0;

  BurstPdlConfig engine_cfg;
  engine_cfg.dc = cfg.dc;
  engine_cfg.trials_per_cell = 6000;
  const BurstPdlEngine engine(engine_cfg);
  const std::size_t racks = 2, failures = 10;
  const double expected = engine.mlec_cell(cfg.code, cfg.scheme, racks, failures);
  ASSERT_GT(expected, 0.01);  // the cell must be hot for MC comparison

  const Topology topo(cfg.dc);
  Rng rng(6);
  std::uint64_t losses = 0;
  const std::uint64_t missions = 4000;
  for (std::uint64_t m = 0; m < missions; ++m) {
    cfg.injected_events = generate_burst(topo, racks, failures, 1.0, rng);
    losses += simulate_fleet(cfg, 1, m).data_loss_missions;
  }
  const double simulated = static_cast<double>(losses) / static_cast<double>(missions);
  EXPECT_NEAR(simulated, expected, std::max(0.35 * expected, 0.02));
}

TEST(FleetSim, ParallelShardingMatchesSerialStatistically) {
  auto cfg = hot_fleet(MlecScheme::kCD);
  const auto serial = simulate_fleet(cfg, 300, 7);
  const auto parallel = simulate_fleet(cfg, 300, 8, &global_pool());
  EXPECT_EQ(serial.missions, parallel.missions);
  // Different seeds/sharding: rates agree within Monte Carlo noise.
  const double a = static_cast<double>(serial.catastrophic_pool_events);
  const double b = static_cast<double>(parallel.catastrophic_pool_events);
  EXPECT_NEAR(a, b, 4.0 * std::sqrt(a + b) + 5.0);
}

TEST(FleetSim, StopOnLossVersusCounting) {
  auto cfg = hot_fleet(MlecScheme::kDC);
  cfg.code = {{2, 1}, {3, 1}};
  cfg.failures.afr = 0.8;
  cfg.method = RepairMethod::kRepairAll;
  cfg.stop_on_loss = false;
  const auto counting = simulate_fleet(cfg, 150, 9);
  EXPECT_GE(counting.data_loss_events, counting.data_loss_missions);
}

TEST(FleetSim, AgreesWithChunkExactSimulator) {
  // The count-level fleet simulator and the chunk-exact system simulator
  // model the same physics; on a toy C/C deployment their PDLs must land in
  // the same range.
  SystemSimConfig chunk_cfg;
  chunk_cfg.dc.racks = 6;
  chunk_cfg.dc.enclosures_per_rack = 2;
  chunk_cfg.dc.disks_per_enclosure = 6;
  chunk_cfg.dc.disk_capacity_tb = 30.0;
  chunk_cfg.code = {{2, 1}, {2, 1}};
  chunk_cfg.scheme = MlecScheme::kCC;
  chunk_cfg.method = RepairMethod::kRepairAll;
  chunk_cfg.failures.afr = 0.8;
  chunk_cfg.stripes_per_network_pool = 4;
  const auto chunk = simulate_system(chunk_cfg, 1500, 10);

  FleetSimConfig fleet_cfg;
  fleet_cfg.dc = chunk_cfg.dc;
  fleet_cfg.code = chunk_cfg.code;
  fleet_cfg.scheme = chunk_cfg.scheme;
  fleet_cfg.method = chunk_cfg.method;
  fleet_cfg.failures = chunk_cfg.failures;
  const auto fleet = simulate_fleet(fleet_cfg, 1500, 11);

  ASSERT_GT(chunk.data_loss_missions + fleet.data_loss_missions, 20u);
  const double ratio = std::max(fleet.pdl(), 1e-4) / std::max(chunk.pdl(), 1e-4);
  EXPECT_GT(ratio, 1.0 / 4.0);
  EXPECT_LT(ratio, 4.0);
}

TEST(FleetSim, ValidatesConfig) {
  FleetSimConfig cfg;
  cfg.mission_hours = 0.0;
  EXPECT_THROW(simulate_fleet(cfg, 1, 1), PreconditionError);
}

}  // namespace
}  // namespace mlec
