#include "placement/lrc.hpp"

#include <gtest/gtest.h>

#include <set>

namespace mlec {
namespace {

const LrcCode kPaperLrc{14, 2, 4};  // the paper's §5.2.3 configuration
const LrcCode kFigureLrc{4, 2, 2};  // Figure 14

TEST(LrcShape, RolesAndGroups) {
  const LrcStripeShape shape(kFigureLrc);
  // Layout: d0 d1 | d2 d3 | L0 L1 | G0 G1.
  EXPECT_EQ(shape.role(0), LrcChunkRole::kData);
  EXPECT_EQ(shape.group(0), 0u);
  EXPECT_EQ(shape.group(1), 0u);
  EXPECT_EQ(shape.group(2), 1u);
  EXPECT_EQ(shape.role(4), LrcChunkRole::kLocalParity);
  EXPECT_EQ(shape.group(4), 0u);
  EXPECT_EQ(shape.group(5), 1u);
  EXPECT_EQ(shape.role(6), LrcChunkRole::kGlobalParity);
  EXPECT_EQ(shape.group(6), 2u);  // sentinel outside local groups
}

TEST(LrcShape, SingleFailureAlwaysRecoverable) {
  const LrcStripeShape shape(kPaperLrc);
  for (std::size_t c = 0; c < kPaperLrc.width(); ++c)
    EXPECT_TRUE(shape.recoverable({c})) << "chunk " << c;
}

TEST(LrcShape, GroupAbsorbsOneFailure) {
  const LrcStripeShape shape(kPaperLrc);
  // r+1 = 5 failures inside one group: residual 4 <= r, recoverable.
  EXPECT_TRUE(shape.recoverable({0, 1, 2, 3, 4}));
  // r+2 = 6 failures inside one group: residual 5 > r, lost.
  EXPECT_FALSE(shape.recoverable({0, 1, 2, 3, 4, 5}));
}

TEST(LrcShape, SpreadFailuresAreCheaper) {
  const LrcStripeShape shape(kPaperLrc);
  // 6 failures spread as 3+3 across both groups: residual 2+2 = 4 <= r.
  EXPECT_TRUE(shape.recoverable({0, 1, 2, 7, 8, 9}));
}

TEST(LrcShape, GlobalParitiesCountFully) {
  const LrcStripeShape shape(kPaperLrc);
  // All 4 globals lost: residual 4, still fine.
  EXPECT_TRUE(shape.recoverable({16, 17, 18, 19}));
  // All globals + 2 in one group: residual 5 > r.
  EXPECT_FALSE(shape.recoverable({16, 17, 18, 19, 0, 1}));
  // All globals + 1 data (absorbed by its local parity): recoverable.
  EXPECT_TRUE(shape.recoverable({16, 17, 18, 19, 0}));
}

TEST(LrcShape, LocalParityLossesJoinTheirGroup) {
  const LrcStripeShape shape(kPaperLrc);
  // Local parity of group 0 is chunk 14; its loss plus one data chunk of the
  // same group leaves residual 1.
  EXPECT_TRUE(shape.recoverable({14, 0}));
  // Entire group 0 (7 data + local parity): residual 7 > r.
  EXPECT_FALSE(shape.recoverable({0, 1, 2, 3, 4, 5, 6, 14}));
}

TEST(LrcShape, CountsApiMatchesChunkApi) {
  const LrcStripeShape shape(kPaperLrc);
  EXPECT_TRUE(LrcStripeShape::recoverable_counts(kPaperLrc, {5, 0}, 0));
  EXPECT_FALSE(LrcStripeShape::recoverable_counts(kPaperLrc, {6, 0}, 0));
  EXPECT_FALSE(LrcStripeShape::recoverable_counts(kPaperLrc, {2, 0}, 4));
  EXPECT_TRUE(LrcStripeShape::recoverable_counts(kPaperLrc, {1, 1}, 4));
}

TEST(LrcShape, SingleRepairReads) {
  const LrcStripeShape shape(kPaperLrc);
  EXPECT_EQ(shape.single_repair_reads(0), 7u);   // data: local group
  EXPECT_EQ(shape.single_repair_reads(14), 7u);  // local parity: its group
  EXPECT_EQ(shape.single_repair_reads(16), 14u); // global parity: all data
}

TEST(LrcPlacement, DeclusteredUsesDistinctRacks) {
  const Topology topo(DataCenterConfig::paper_default());
  const auto placements = place_lrc_declustered(topo, kPaperLrc, 50);
  ASSERT_EQ(placements.size(), 50u);
  for (const auto& p : placements) {
    ASSERT_EQ(p.racks.size(), 20u);
    const std::set<RackId> uniq(p.racks.begin(), p.racks.end());
    EXPECT_EQ(uniq.size(), 20u);
    for (RackId r : p.racks) EXPECT_LT(r, 60u);
  }
}

TEST(LrcPlacement, RejectsTooFewRacks) {
  DataCenterConfig dc = DataCenterConfig::paper_default();
  dc.racks = 10;
  const Topology topo(dc);
  EXPECT_THROW(place_lrc_declustered(topo, kPaperLrc, 1), PreconditionError);
}

}  // namespace
}  // namespace mlec
