#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "util/error.hpp"

namespace mlec {
namespace {

TEST(ThreadPool, ParallelForVisitsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ChunksPartitionTheRange) {
  ThreadPool pool(3);
  Mutex m;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  pool.parallel_chunks(10, 110, 7, [&](std::size_t, std::size_t lo, std::size_t hi) {
    MutexLock lock(m);
    ranges.emplace_back(lo, hi);
  });
  std::sort(ranges.begin(), ranges.end());
  ASSERT_EQ(ranges.size(), 7u);
  EXPECT_EQ(ranges.front().first, 10u);
  EXPECT_EQ(ranges.back().second, 110u);
  for (std::size_t i = 1; i < ranges.size(); ++i)
    EXPECT_EQ(ranges[i].first, ranges[i - 1].second);
}

TEST(ThreadPool, ExceptionPropagates) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [](std::size_t i) {
                                   if (i == 37) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, UsableAfterException) {
  ThreadPool pool(2);
  try {
    pool.parallel_for(0, 10, [](std::size_t) { throw std::runtime_error("x"); });
  } catch (const std::runtime_error&) {
  }
  std::atomic<int> count{0};
  pool.parallel_for(0, 10, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ExceptionAbandonsRemainingChunks) {
  // A single worker runs chunks in order, so chunk 0's throw must cause
  // every later chunk to be drained without executing.
  ThreadPool pool(1);
  std::atomic<int> executed{0};
  EXPECT_THROW(pool.parallel_chunks(0, 100, 10,
                                    [&](std::size_t c, std::size_t, std::size_t) {
                                      if (c == 0) throw std::runtime_error("first");
                                      executed.fetch_add(1);
                                    }),
               std::runtime_error);
  EXPECT_EQ(executed.load(), 0);
}

TEST(ThreadPool, ConcurrentExceptionsPropagateExactlyOne) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> thrown{0};
    try {
      pool.parallel_for(0, 64, [&](std::size_t) {
        thrown.fetch_add(1);
        throw std::runtime_error("concurrent");
      });
      FAIL() << "expected parallel_for to rethrow";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "concurrent");
    }
    EXPECT_GE(thrown.load(), 1);
    // Pool must stay fully usable after every throwing batch.
    std::atomic<int> count{0};
    pool.parallel_for(0, 16, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 16);
  }
}

TEST(ThreadPool, StoppedTokenSkipsWork) {
  ThreadPool pool(2);
  StopSource source;
  source.request_stop();
  std::atomic<int> count{0};
  pool.parallel_for(0, 100, [&](std::size_t) { count.fetch_add(1); }, source.token());
  EXPECT_EQ(count.load(), 0);
}

TEST(ThreadPool, UnstoppedTokenRunsEverything) {
  ThreadPool pool(2);
  StopSource source;
  std::atomic<int> count{0};
  pool.parallel_for(0, 100, [&](std::size_t) { count.fetch_add(1); }, source.token());
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SumIsCorrectUnderContention) {
  ThreadPool pool;
  std::atomic<long long> total{0};
  pool.parallel_for(1, 10001, [&](std::size_t i) { total.fetch_add(static_cast<long long>(i)); });
  EXPECT_EQ(total.load(), 50005000LL);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&global_pool(), &global_pool());
  EXPECT_GE(global_pool().size(), 1u);
}

TEST(ThreadPool, EnvOverrideSizesDefaultConstruction) {
  // MLEC_THREADS forces the default worker count (sanitizer CI uses it to
  // get real concurrency on small runners). Garbage values fall back to
  // hardware concurrency; an explicit count always wins.
  // setenv/unsetenv race with nothing here: each pool is joined before the
  // next environment write, and no other test thread exists.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  ASSERT_EQ(setenv("MLEC_THREADS", "3", 1), 0);
  EXPECT_EQ(ThreadPool{}.size(), 3u);
  EXPECT_EQ(ThreadPool{2}.size(), 2u);
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  ASSERT_EQ(setenv("MLEC_THREADS", "not-a-number", 1), 0);
  EXPECT_GE(ThreadPool{}.size(), 1u);
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  ASSERT_EQ(unsetenv("MLEC_THREADS"), 0);
}

}  // namespace
}  // namespace mlec
