#include "util/units.hpp"

#include <gtest/gtest.h>

namespace mlec::units {
namespace {

TEST(Units, GbpsToMbps) {
  // 10 Gbps = 1250 MB/s decimal.
  EXPECT_DOUBLE_EQ(gbps_to_mbps(10.0), 1250.0);
}

TEST(Units, TbToMb) { EXPECT_DOUBLE_EQ(tb_to_mb(2.0), 2e6); }

TEST(Units, HoursToMove) {
  // 20 TB at 40 MB/s: 5e5 seconds = 138.888... hours (the paper's Cp disk
  // rebuild).
  EXPECT_NEAR(hours_to_move(20.0, 40.0), 138.888, 0.01);
}

TEST(Units, YearHasQuarterDay) { EXPECT_DOUBLE_EQ(kHoursPerYear, 8766.0); }

}  // namespace
}  // namespace mlec::units
