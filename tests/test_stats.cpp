#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace mlec {
namespace {

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs{1.0, 2.5, -3.0, 7.0, 0.5};
  RunningStats s;
  for (double x : xs) s.add(x);
  double mean = 0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);

  EXPECT_EQ(s.count(), xs.size());
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.0);
  EXPECT_NEAR(s.sem(), std::sqrt(var / 5.0), 1e-12);
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_TRUE(std::isnan(s.min()));
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(5);
  RunningStats whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform() * 10 - 5;
    whole.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_NEAR(b.mean(), 2.0, 1e-12);
}

TEST(ProportionEstimate, PointEstimate) {
  ProportionEstimate p;
  for (int i = 0; i < 30; ++i) p.add(i < 12);
  EXPECT_DOUBLE_EQ(p.estimate(), 0.4);
  EXPECT_EQ(p.successes(), 12u);
  EXPECT_EQ(p.trials(), 30u);
}

TEST(ProportionEstimate, WilsonBracketsTruth) {
  Rng rng(17);
  int covered = 0;
  const int rounds = 200;
  for (int r = 0; r < rounds; ++r) {
    ProportionEstimate p;
    for (int i = 0; i < 100; ++i) p.add(rng.bernoulli(0.3));
    const auto ci = p.wilson();
    EXPECT_LE(ci.lo, ci.hi);
    if (ci.lo <= 0.3 && 0.3 <= ci.hi) ++covered;
  }
  // 95% interval: expect coverage near 190/200, allow slack.
  EXPECT_GE(covered, 180);
}

TEST(ProportionEstimate, EmptyInterval) {
  ProportionEstimate p;
  const auto ci = p.wilson();
  EXPECT_EQ(ci.lo, 0.0);
  EXPECT_EQ(ci.hi, 1.0);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.5);   // bin 4
  h.add(-3.0);  // clamps to bin 0
  h.add(42.0);  // clamps to bin 4
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, QuantileInterpolates) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 5), PreconditionError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), PreconditionError);
}

TEST(RunningStats, RawRoundTripIsExact) {
  RunningStats s;
  for (double x : {1.0, 2.5, -3.0, 7.25}) s.add(x);
  const auto restored = RunningStats::from_raw(s.raw());
  EXPECT_TRUE(restored == s);
  EXPECT_EQ(restored.mean(), s.mean());
  EXPECT_EQ(restored.count(), s.count());
  // Continuing to accumulate from the restored copy matches the original.
  RunningStats cont = restored;
  s.add(11.0);
  cont.add(11.0);
  EXPECT_TRUE(cont == s);
}

}  // namespace
}  // namespace mlec
