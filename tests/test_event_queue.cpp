#include "sim/event.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mlec {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(1.0, [&] { order.push_back(2); });
  q.schedule(1.0, [&] { order.push_back(3); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, CallbacksMayScheduleMore) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] {
    ++fired;
    q.schedule(2.0, [&] { ++fired; });
  });
  q.run_until(10.0);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(q.now(), 10.0);
}

TEST(EventQueue, RunUntilLeavesLaterEventsQueued) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] { ++fired; });
  q.schedule(5.0, [&] { ++fired; });
  q.run_until(3.0);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(q.empty());
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
  EXPECT_DOUBLE_EQ(q.next_time(), 5.0);
}

TEST(EventQueue, PastSchedulingRejected) {
  EventQueue q;
  q.schedule(2.0, [] {});
  q.run_next();
  EXPECT_THROW(q.schedule(1.0, [] {}), PreconditionError);
}

TEST(EventQueue, EmptyQueriesRejected) {
  EventQueue q;
  EXPECT_THROW(q.run_next(), PreconditionError);
  EXPECT_THROW(q.next_time(), PreconditionError);
}

}  // namespace
}  // namespace mlec
