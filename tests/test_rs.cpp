#include "gf/rs.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace mlec::gf {
namespace {

std::vector<std::vector<byte_t>> random_shards(std::size_t count, std::size_t len, Rng& rng) {
  std::vector<std::vector<byte_t>> shards(count);
  for (auto& s : shards) {
    s.resize(len);
    for (auto& b : s) b = static_cast<byte_t>(rng.uniform_below(256));
  }
  return shards;
}

/// (k, p) pairs exercised by the round-trip property suite — includes the
/// paper's local (17+3) and network (10+2) codes.
class RsRoundTrip : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(RsRoundTrip, AnyErasurePatternDecodes) {
  const auto [k, p] = GetParam();
  const RsCode code(k, p);
  Rng rng(1000 + k * 31 + p);
  const std::size_t len = 257;  // odd size to catch stride bugs

  auto data = random_shards(k, len, rng);
  std::vector<std::vector<byte_t>> parity(p, std::vector<byte_t>(len, 0));
  code.encode(data, parity);

  // All shards together.
  std::vector<std::vector<byte_t>> shards = data;
  shards.insert(shards.end(), parity.begin(), parity.end());

  for (int round = 0; round < 20; ++round) {
    const std::size_t losses = 1 + rng.uniform_below(p);
    auto lost = rng.sample_without_replacement(k + p, losses);
    auto damaged = shards;
    std::vector<std::size_t> lost_idx(lost.begin(), lost.end());
    for (auto idx : lost_idx) std::fill(damaged[idx].begin(), damaged[idx].end(), 0xAA);

    code.decode(damaged, lost_idx);
    for (std::size_t i = 0; i < k + p; ++i)
      ASSERT_EQ(damaged[i], shards[i]) << "k=" << k << " p=" << p << " round=" << round;
  }
}

INSTANTIATE_TEST_SUITE_P(CodeShapes, RsRoundTrip,
                         ::testing::Values(std::pair<std::size_t, std::size_t>{2, 1},
                                           std::pair<std::size_t, std::size_t>{4, 2},
                                           std::pair<std::size_t, std::size_t>{10, 2},
                                           std::pair<std::size_t, std::size_t>{17, 3},
                                           std::pair<std::size_t, std::size_t>{14, 6},
                                           std::pair<std::size_t, std::size_t>{50, 10},
                                           std::pair<std::size_t, std::size_t>{1, 4}));

TEST(RsCode, ParityIsDeterministic) {
  const RsCode code(5, 3);
  Rng rng(7);
  auto data = random_shards(5, 64, rng);
  std::vector<std::vector<byte_t>> p1(3, std::vector<byte_t>(64, 0));
  std::vector<std::vector<byte_t>> p2(3, std::vector<byte_t>(64, 1));
  code.encode(data, p1);
  code.encode(data, p2);
  EXPECT_EQ(p1, p2);
}

TEST(RsCode, SingleParityIsNotPlainXorButStillDecodes) {
  // With the Cauchy construction p=1 is a weighted XOR; the decode contract
  // is what matters.
  const RsCode code(3, 1);
  Rng rng(8);
  auto data = random_shards(3, 32, rng);
  std::vector<std::vector<byte_t>> parity(1, std::vector<byte_t>(32, 0));
  code.encode(data, parity);

  std::vector<std::vector<byte_t>> shards = data;
  shards.push_back(parity[0]);
  auto expected = shards[1];
  std::fill(shards[1].begin(), shards[1].end(), 0);
  const std::size_t lost[] = {1};
  code.decode(shards, lost);
  EXPECT_EQ(shards[1], expected);
}

TEST(RsCode, TooManyLossesRejected) {
  const RsCode code(4, 2);
  std::vector<std::vector<byte_t>> shards(6, std::vector<byte_t>(8, 0));
  const std::size_t lost[] = {0, 1, 2};
  EXPECT_THROW(code.decode(shards, lost), PreconditionError);
}

TEST(RsCode, DuplicateLostIndexRejected) {
  const RsCode code(4, 2);
  std::vector<std::vector<byte_t>> shards(6, std::vector<byte_t>(8, 0));
  const std::size_t lost[] = {1, 1};
  EXPECT_THROW(code.decode(shards, lost), PreconditionError);
}

TEST(RsCode, ShardLimitEnforced) {
  EXPECT_THROW(RsCode(250, 10), PreconditionError);
  EXPECT_NO_THROW(RsCode(246, 10));
}

TEST(RsCode, ZeroParityDecodeRejectsAnyLoss) {
  // p == 0 is a valid (replication-free) configuration, but it cannot
  // repair anything: any non-empty lost set must be rejected up front, not
  // fall through to a degenerate 0-parity solve.
  const RsCode code(4, 0);
  std::vector<std::vector<byte_t>> shards(4, std::vector<byte_t>(8, 0));
  const std::size_t lost[] = {2};
  EXPECT_THROW(code.decode(shards, lost), PreconditionError);
  // The empty lost set stays a no-op, as for any p.
  EXPECT_NO_THROW(code.decode(shards, {}));
}

TEST(RsCodeDeathTest, ZeroParityDecodeAbortsInAbortMode) {
  EXPECT_DEATH(
      {
        set_contract_mode(ContractMode::kAbort);
        const RsCode code(4, 0);
        std::vector<std::vector<byte_t>> shards(4, std::vector<byte_t>(8, 0));
        const std::size_t lost[] = {2};
        code.decode(shards, lost);
      },
      "a p == 0 code has no parity to repair from");
}

TEST(RsCode, EmptyLostIsNoop) {
  const RsCode code(2, 1);
  std::vector<std::vector<byte_t>> shards(3, std::vector<byte_t>(4, 9));
  code.decode(shards, {});
  for (const auto& s : shards)
    for (auto b : s) EXPECT_EQ(b, 9);
}

}  // namespace
}  // namespace mlec::gf
