#include "sim/failure_gen.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>

namespace mlec {
namespace {

DataCenterConfig small_dc() {
  DataCenterConfig dc;
  dc.racks = 10;
  dc.enclosures_per_rack = 2;
  dc.disks_per_enclosure = 12;
  return dc;
}

TEST(GenerateFailures, ExponentialCountMatchesAfr) {
  const Topology topo(small_dc());  // 240 disks
  Rng rng(1);
  FailureDistribution dist;
  dist.afr = 0.5;  // high rate so the test converges quickly
  // Expect ~240 * 0.5 failures per year (renewal process keeps rate ~const).
  double total = 0;
  const int rounds = 50;
  for (int i = 0; i < rounds; ++i)
    total += static_cast<double>(generate_failures(topo, dist, 8766.0, rng).size());
  EXPECT_NEAR(total / rounds, 240 * 0.5, 8.0);
}

TEST(GenerateFailures, SortedByTime) {
  const Topology topo(small_dc());
  Rng rng(2);
  FailureDistribution dist;
  dist.afr = 0.9;
  const auto trace = generate_failures(topo, dist, 8766.0, rng);
  for (std::size_t i = 1; i < trace.size(); ++i)
    EXPECT_LE(trace[i - 1].time_hours, trace[i].time_hours);
}

TEST(GenerateFailures, WeibullRuns) {
  const Topology topo(small_dc());
  Rng rng(3);
  FailureDistribution dist;
  dist.kind = FailureDistribution::Kind::kWeibull;
  dist.weibull_shape = 1.5;
  dist.weibull_scale_hours = 5000.0;
  const auto trace = generate_failures(topo, dist, 8766.0, rng);
  EXPECT_GT(trace.size(), 0u);
}

TEST(GenerateBurst, ExactlyRequestedShape) {
  const Topology topo(small_dc());
  Rng rng(4);
  for (int round = 0; round < 100; ++round) {
    const auto trace = generate_burst(topo, 4, 9, 100.0, rng);
    ASSERT_EQ(trace.size(), 9u);
    std::set<DiskId> disks;
    std::set<RackId> racks;
    for (const auto& ev : trace) {
      EXPECT_DOUBLE_EQ(ev.time_hours, 100.0);
      disks.insert(ev.disk);
      racks.insert(topo.rack_of(ev.disk));
    }
    EXPECT_EQ(disks.size(), 9u);   // distinct disks
    EXPECT_EQ(racks.size(), 4u);   // every chosen rack hit
  }
}

TEST(GenerateBurst, RejectsInfeasible) {
  const Topology topo(small_dc());
  Rng rng(5);
  EXPECT_THROW(generate_burst(topo, 5, 4, 0.0, rng), PreconditionError);    // y < x
  EXPECT_THROW(generate_burst(topo, 11, 20, 0.0, rng), PreconditionError);  // x > racks
  EXPECT_THROW(generate_burst(topo, 1, 25, 0.0, rng), PreconditionError);   // y > disks
}

TEST(Trace, FormatParseRoundTrip) {
  const Topology topo(small_dc());
  Rng rng(6);
  const auto burst = generate_burst(topo, 3, 7, 42.5, rng);
  const std::string text = format_trace(burst);
  std::istringstream in(text);
  const auto parsed = parse_trace(in, topo);
  ASSERT_EQ(parsed.size(), burst.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_DOUBLE_EQ(parsed[i].time_hours, burst[i].time_hours);
    EXPECT_EQ(parsed[i].disk, burst[i].disk);
  }
}

TEST(Trace, ParseSkipsCommentsAndSorts) {
  const Topology topo(small_dc());
  std::istringstream in("# comment\n\n5.0,3\n1.0,7\n");
  const auto trace = parse_trace(in, topo);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_DOUBLE_EQ(trace[0].time_hours, 1.0);
  EXPECT_EQ(trace[0].disk, 7u);
}

TEST(Trace, ParseRejectsGarbage) {
  const Topology topo(small_dc());
  std::istringstream bad("not a trace\n");
  EXPECT_THROW(parse_trace(bad, topo), PreconditionError);
  std::istringstream oob("1.0,99999\n");
  EXPECT_THROW(parse_trace(oob, topo), PreconditionError);
  std::istringstream neg("-1.0,3\n");
  EXPECT_THROW(parse_trace(neg, topo), PreconditionError);
}

TEST(Trace, ParseRejectsNonFiniteTimes) {
  const Topology topo(small_dc());
  std::istringstream nan_time("nan,3\n");
  EXPECT_THROW(parse_trace(nan_time, topo), PreconditionError);
  std::istringstream inf_time("inf,3\n");
  EXPECT_THROW(parse_trace(inf_time, topo), PreconditionError);
}

TEST(Trace, ParseRejectsTrailingGarbage) {
  const Topology topo(small_dc());
  std::istringstream junk("1.0,3 extra\n");
  EXPECT_THROW(parse_trace(junk, topo), PreconditionError);
  // A trailing comment is fine, though.
  std::istringstream commented("1.0,3 # replaced 2024-01-02\n");
  EXPECT_EQ(parse_trace(commented, topo).size(), 1u);
}

TEST(Trace, ParseErrorsCarryLineNumbers) {
  const Topology topo(small_dc());
  std::istringstream in("# header\n1.0,3\nbogus\n");
  try {
    parse_trace(in, topo);
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
  }
}

TEST(Trace, MonotonicModeRejectsBackwardsTimestamps) {
  const Topology topo(small_dc());
  std::istringstream lenient("5.0,3\n1.0,7\n");
  EXPECT_EQ(parse_trace(lenient, topo).size(), 2u);  // default: sorted, not rejected
  std::istringstream strict("5.0,3\n1.0,7\n");
  try {
    parse_trace(strict, topo, /*require_monotonic=*/true);
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
  }
  std::istringstream ties("1.0,3\n1.0,7\n2.0,1\n");
  EXPECT_EQ(parse_trace(ties, topo, /*require_monotonic=*/true).size(), 3u);
}

}  // namespace
}  // namespace mlec
