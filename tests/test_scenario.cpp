#include "core/scenario.hpp"

#include <gtest/gtest.h>

#include "core/spec_io.hpp"
#include "placement/schemes.hpp"

namespace mlec {
namespace {

Scenario reparse(const Scenario& sc) {
  return load_scenario(IniFile::parse_string(format_scenario(sc)));
}

TEST(Scenario, PaperDefaultValidates) {
  const Scenario sc = Scenario::paper_default();
  EXPECT_NO_THROW(sc.validate());
  EXPECT_EQ(sc.system.dc.total_disks(), 57600u);
  EXPECT_EQ(sc.system.code, MlecCode::paper_default());
  EXPECT_EQ(sc.failure_kind, FailureDistribution::Kind::kExponential);
  EXPECT_FALSE(sc.has_bursts());
}

TEST(Scenario, RoundTripsEverySchemeAndRepairMethod) {
  for (const MlecScheme scheme : kAllMlecSchemes) {
    for (const RepairMethod repair : kAllRepairMethods) {
      Scenario sc = Scenario::paper_default();
      sc.system.scheme = scheme;
      sc.system.repair = repair;
      const Scenario back = reparse(sc);
      EXPECT_EQ(back.system.scheme, scheme) << to_string(scheme);
      EXPECT_EQ(back.system.repair, repair) << to_string(repair);
      EXPECT_EQ(back.system.code, sc.system.code);
    }
  }
}

TEST(Scenario, RoundTripsBothFailureKinds) {
  for (const auto kind :
       {FailureDistribution::Kind::kExponential, FailureDistribution::Kind::kWeibull}) {
    Scenario sc = Scenario::paper_default();
    sc.failure_kind = kind;
    sc.weibull_shape = 1.7;
    sc.weibull_scale_hours = 5.0e5;
    const Scenario back = reparse(sc);
    EXPECT_EQ(back.failure_kind, kind);
    EXPECT_DOUBLE_EQ(back.weibull_shape, 1.7);
    EXPECT_DOUBLE_EQ(back.weibull_scale_hours, 5.0e5);
  }
}

TEST(Scenario, RoundTripsEveryExtensionField) {
  Scenario sc = Scenario::paper_default();
  sc.name = "extended";
  sc.system.afr = 0.035;
  sc.priority_repair = false;
  sc.ure_per_bit = 1e-16;
  sc.bursts = {2.5, 4, 45};
  sc.missions = 123;
  sc.split_missions = 456;
  sc.burst_trials = 789;
  sc.seed = 31337;
  const Scenario back = reparse(sc);
  EXPECT_EQ(back.name, "extended");
  EXPECT_DOUBLE_EQ(back.system.afr, 0.035);
  EXPECT_FALSE(back.priority_repair);
  EXPECT_DOUBLE_EQ(back.ure_per_bit, 1e-16);
  EXPECT_TRUE(back.has_bursts());
  EXPECT_DOUBLE_EQ(back.bursts.bursts_per_year, 2.5);
  EXPECT_EQ(back.bursts.racks, 4u);
  EXPECT_EQ(back.bursts.failures, 45u);
  EXPECT_EQ(back.missions, 123u);
  EXPECT_EQ(back.split_missions, 456u);
  EXPECT_EQ(back.burst_trials, 789u);
  EXPECT_EQ(back.seed, 31337u);
}

TEST(Scenario, ExampleScenarioParsesToPaperDefaults) {
  const Scenario sc = load_scenario(IniFile::parse_string(example_scenario()));
  EXPECT_NO_THROW(sc.validate());
  EXPECT_EQ(sc.system.dc.total_disks(), 57600u);
  EXPECT_EQ(sc.failure_kind, FailureDistribution::Kind::kExponential);
  EXPECT_TRUE(sc.priority_repair);
}

TEST(Scenario, ValidateRejectsNonsense) {
  Scenario afr = Scenario::paper_default();
  afr.system.afr = 0.0;
  EXPECT_THROW(afr.validate(), PreconditionError);

  Scenario shape = Scenario::paper_default();
  shape.failure_kind = FailureDistribution::Kind::kWeibull;
  shape.weibull_shape = -1.0;
  EXPECT_THROW(shape.validate(), PreconditionError);

  Scenario missions = Scenario::paper_default();
  missions.missions = 0;
  EXPECT_THROW(missions.validate(), PreconditionError);
}

TEST(Scenario, ConversionsCarryTheSamePhysics) {
  Scenario sc = Scenario::paper_default();
  sc.system.afr = 0.02;
  sc.system.detection_hours = 0.25;
  sc.ure_per_bit = 1e-17;
  sc.priority_repair = false;

  const FleetSimConfig fleet = sc.fleet_config();
  EXPECT_EQ(fleet.dc.total_disks(), sc.system.dc.total_disks());
  EXPECT_DOUBLE_EQ(fleet.failures.afr, 0.02);
  EXPECT_DOUBLE_EQ(fleet.detection_hours, 0.25);
  EXPECT_FALSE(fleet.priority_repair);

  const DurabilityEnv env = sc.durability_env();
  EXPECT_DOUBLE_EQ(env.afr, 0.02);
  EXPECT_DOUBLE_EQ(env.ure_per_bit, 1e-17);

  const LocalPoolSimConfig pool = sc.local_pool_config();
  EXPECT_EQ(pool.code, sc.system.code.local);
  EXPECT_DOUBLE_EQ(pool.afr, 0.02);
  EXPECT_FALSE(pool.priority_repair);

  const BurstPdlConfig burst = sc.burst_config();
  EXPECT_EQ(burst.trials_per_cell, sc.burst_trials);
  EXPECT_EQ(burst.seed, sc.seed);
}

}  // namespace
}  // namespace mlec
