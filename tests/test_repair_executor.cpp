#include "sim/repair_executor.hpp"

#include <gtest/gtest.h>

#include "sim/failure_gen.hpp"

namespace mlec {
namespace {

DataCenterConfig toy_dc() {
  DataCenterConfig dc;
  dc.racks = 6;
  dc.enclosures_per_rack = 2;
  dc.disks_per_enclosure = 6;
  dc.disk_capacity_tb = 1.28e-6;
  return dc;
}

const MlecCode kToyCode{{2, 1}, {2, 1}};

class ExecutorSchemes
    : public ::testing::TestWithParam<std::tuple<MlecScheme, RepairMethod>> {};

TEST_P(ExecutorSchemes, CatastrophicPoolRepairsByteExact) {
  const auto [scheme, method] = GetParam();
  const Topology topo(toy_dc());
  const StripeMap map(topo, kToyCode, scheme, 6, /*seed=*/31);
  MaterializedSystem system(map, 48, /*seed=*/5);

  // Fail p_l+1 = 2 disks that co-host a local stripe: a catastrophic pool.
  const auto& victim = map.stripes().front().locals.front();
  system.fail_disks({victim.disks[0], victim.disks[1]});

  const auto exec = system.execute(method);
  EXPECT_TRUE(exec.verified) << to_string(scheme) << " " << to_string(method);
  EXPECT_GT(exec.chunks_rebuilt, 0u);
  EXPECT_EQ(exec.unrecoverable_network_stripes, 0u);
  if (method == RepairMethod::kRepairAll || method == RepairMethod::kRepairFailedOnly)
    EXPECT_EQ(exec.local_decodes, 0u);
  // R_MIN always finishes each lost stripe locally; R_HYB does so only when
  // locally-recoverable stripes exist (on */C schemes every pool stripe is
  // lost, the paper's F#3).
  if (method == RepairMethod::kRepairMinimum) EXPECT_GT(exec.local_decodes, 0u);
  if (method != RepairMethod::kRepairAll) EXPECT_GT(exec.network_decodes, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, ExecutorSchemes,
    ::testing::Combine(::testing::ValuesIn(kAllMlecSchemes),
                       ::testing::ValuesIn(kAllRepairMethods)));

TEST(RepairExecutor, SingleDiskRepairsLocally) {
  const Topology topo(toy_dc());
  const StripeMap map(topo, kToyCode, MlecScheme::kCC, 4, 7);
  MaterializedSystem system(map, 32, 9);
  system.fail_disks({map.stripes().front().locals.front().disks[0]});
  const auto exec = system.execute(RepairMethod::kRepairMinimum);
  EXPECT_TRUE(exec.verified);
  EXPECT_EQ(exec.network_decodes, 0u);
  EXPECT_GT(exec.local_decodes, 0u);
}

TEST(RepairExecutor, NoFailuresIsNoop) {
  const Topology topo(toy_dc());
  const StripeMap map(topo, kToyCode, MlecScheme::kCD, 4, 7);
  MaterializedSystem system(map, 32, 9);
  const auto exec = system.execute(RepairMethod::kRepairAll);
  EXPECT_TRUE(exec.verified);
  EXPECT_EQ(exec.chunks_rebuilt, 0u);
  EXPECT_EQ(exec.network_decodes, 0u);
  EXPECT_EQ(exec.local_decodes, 0u);
}

TEST(RepairExecutor, MethodsShareTheSameRecoveredBytes) {
  // Every method must converge to identical (pristine) contents; run the
  // same failure through all four.
  const Topology topo(toy_dc());
  const StripeMap map(topo, kToyCode, MlecScheme::kDD, 6, 13);
  const auto& victim = map.stripes().front().locals.front();
  for (auto method : kAllRepairMethods) {
    MaterializedSystem system(map, 16, 21);
    system.fail_disks({victim.disks[0], victim.disks[1]});
    EXPECT_TRUE(system.execute(method).verified) << to_string(method);
  }
}

TEST(RepairExecutor, RandomFailureFuzz) {
  // Random <= p_l+1-disk failures across random schemes must always verify
  // (data loss needs p_n+1 lost locals of one stripe, impossible with two
  // failed disks here).
  const Topology topo(toy_dc());
  Rng rng(77);
  for (int round = 0; round < 12; ++round) {
    const auto scheme = kAllMlecSchemes[round % 4];
    const StripeMap map(topo, kToyCode, scheme, 4, 100 + round);
    MaterializedSystem system(map, 24, round);
    std::vector<DiskId> failed;
    for (auto d : rng.sample_without_replacement(topo.config().total_disks(), 2))
      failed.push_back(static_cast<DiskId>(d));
    system.fail_disks(failed);
    const auto exec = system.execute(kAllRepairMethods[round % 4]);
    EXPECT_TRUE(exec.verified) << "round " << round;
    EXPECT_EQ(exec.unrecoverable_network_stripes, 0u);
  }
}

TEST(RepairExecutor, UnrecoverableStripesAreCountedNotCrashed) {
  const Topology topo(toy_dc());
  const StripeMap map(topo, kToyCode, MlecScheme::kCC, 1, 3);
  MaterializedSystem system(map, 16, 4);
  const auto& stripe = map.stripes().front();
  // Lose p_n+1 = 2 local stripes of one network stripe.
  system.fail_disks({stripe.locals[0].disks[0], stripe.locals[0].disks[1],
                     stripe.locals[1].disks[0], stripe.locals[1].disks[1]});
  const auto exec = system.execute(RepairMethod::kRepairFailedOnly);
  EXPECT_GE(exec.unrecoverable_network_stripes, 1u);
}

TEST(RepairExecutor, EncodingsCommute) {
  // The local parity of a network parity equals the network parity of the
  // local parities — the linearity argument §2.1 relies on. Verified by
  // construction: materialization encodes network-then-local; a failure of
  // a network-parity local's parity chunk must decode back locally.
  const Topology topo(toy_dc());
  const StripeMap map(topo, kToyCode, MlecScheme::kCC, 2, 17);
  MaterializedSystem system(map, 32, 18);
  // locals.back() is a network-parity local; its position 2 chunk is the
  // local parity of network parities.
  const auto& parity_local = map.stripes().front().locals.back();
  system.fail_disks({parity_local.disks[2]});
  const auto exec = system.execute(RepairMethod::kRepairMinimum);
  EXPECT_TRUE(exec.verified);
}

}  // namespace
}  // namespace mlec
