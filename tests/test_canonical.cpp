// Scenario canonicalization: the server's dedup story rests on isomorphic
// scenario files — reordered sections, reordered keys, comments, and
// equivalent unit spellings — collapsing to one canonical text and one
// structural fingerprint, while any real parameter change separates them.
#include "core/spec_io.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/scenario.hpp"
#include "util/error.hpp"
#include "util/ini.hpp"

namespace mlec {
namespace {

Scenario from_text(const std::string& text) {
  return load_scenario(IniFile::parse_string(text));
}

/// Key order, section order, and whitespace are scrambled across the
/// variants below; all describe this system.
const char* kBase =
    "[scenario]\n"
    "name = canon\n"
    "[datacenter]\n"
    "racks = 6\n"
    "enclosures_per_rack = 2\n"
    "disks_per_enclosure = 8\n"
    "disk_capacity_tb = 18\n"
    "[code]\n"
    "mlec = (2+1)/(3+1)\n"
    "scheme = C/C\n"
    "repair = R_ALL\n"
    "[failures]\n"
    "afr = 0.5\n"
    "[sim]\n"
    "missions = 100\n"
    "seed = 7\n";

TEST(Canonical, ReorderedSectionsAndKeysShareOneNormalForm) {
  const char* reordered =
      "# same deployment, shuffled\n"
      "[sim]\n"
      "seed = 7\n"
      "missions = 100\n"
      "[code]\n"
      "repair = R_ALL\n"
      "mlec   = (2+1)/(3+1)\n"
      "scheme = C/C\n"
      "[failures]\n"
      "afr = 0.5\n"
      "[datacenter]\n"
      "disk_capacity_tb = 18\n"
      "disks_per_enclosure = 8\n"
      "racks = 6\n"
      "enclosures_per_rack = 2\n"
      "[scenario]\n"
      "name = canon\n";
  const Scenario a = from_text(kBase);
  const Scenario b = from_text(reordered);
  EXPECT_EQ(format_scenario(a), format_scenario(b));
  EXPECT_EQ(scenario_identity(a), scenario_identity(b));
  EXPECT_EQ(scenario_fingerprint(a), scenario_fingerprint(b));
}

TEST(Canonical, CanonicalTextIsAFixpoint) {
  const Scenario a = from_text(kBase);
  const std::string canonical = format_scenario(a);
  EXPECT_EQ(canonical, format_scenario(from_text(canonical)));
  EXPECT_EQ(scenario_fingerprint(a), scenario_fingerprint(from_text(canonical)));
}

TEST(Canonical, EquivalentUnitSpellingsCollapse) {
  std::string gb = kBase;
  gb.replace(gb.find("disk_capacity_tb = 18"), 21, "disk_capacity_tb = 18000GB");
  std::string tb = kBase;
  tb.replace(tb.find("disk_capacity_tb = 18"), 21, "disk_capacity_tb = 18TB");
  const Scenario plain = from_text(kBase);
  const Scenario as_gb = from_text(gb);
  const Scenario as_tb = from_text(tb);
  // Bit-exact, not merely close: the conversion multiplies before dividing.
  EXPECT_EQ(plain.system.dc.disk_capacity_tb, as_gb.system.dc.disk_capacity_tb);
  EXPECT_EQ(scenario_fingerprint(plain), scenario_fingerprint(as_gb));
  EXPECT_EQ(scenario_fingerprint(plain), scenario_fingerprint(as_tb));
  EXPECT_EQ(format_scenario(plain), format_scenario(as_gb));
}

TEST(Canonical, OneParameterChangeSeparatesFingerprints) {
  const std::uint64_t base_fp = scenario_fingerprint(from_text(kBase));
  const struct {
    const char* from;
    const char* to;
  } edits[] = {
      {"racks = 6", "racks = 7"},
      {"disk_capacity_tb = 18", "disk_capacity_tb = 20"},
      {"afr = 0.5", "afr = 0.25"},
      {"mlec = (2+1)/(3+1)", "mlec = (2+1)/(6+2)"},
      {"missions = 100", "missions = 200"},
  };
  for (const auto& edit : edits) {
    std::string text = kBase;
    const auto at = text.find(edit.from);
    ASSERT_NE(at, std::string::npos) << edit.from;
    text.replace(at, std::string(edit.from).size(), edit.to);
    EXPECT_NE(scenario_fingerprint(from_text(text)), base_fp) << edit.to;
  }
}

TEST(Canonical, NameAndSeedAreNotPartOfTheIdentity) {
  std::string renamed = kBase;
  renamed.replace(renamed.find("name = canon"), 12, "name = other");
  std::string reseeded = kBase;
  reseeded.replace(reseeded.find("seed = 7"), 8, "seed = 8");
  const std::uint64_t base_fp = scenario_fingerprint(from_text(kBase));
  // The memo key carries the seed separately; the fingerprint identifies
  // the system under study, not the label or the RNG stream.
  EXPECT_EQ(scenario_fingerprint(from_text(renamed)), base_fp);
  EXPECT_EQ(scenario_fingerprint(from_text(reseeded)), base_fp);
}

TEST(Canonical, DefaultCodeFamilySpellingCollapses) {
  // `family = rs` is the default; writing it out is the same scenario.
  std::string spelled = kBase;
  spelled.replace(spelled.find("scheme = C/C"), 12, "family = rs\nscheme = C/C");
  EXPECT_EQ(scenario_fingerprint(from_text(kBase)), scenario_fingerprint(from_text(spelled)));
}

/// kBase with an LRC network level: same deployment arithmetic (width 7
/// network part), locality (4,2,1).
std::string lrc_base() {
  std::string text = kBase;
  text.replace(text.find("mlec = (2+1)/(3+1)"), 18,
               "mlec = (4+3)/(3+1)\nfamily = lrc\nlrc = (4,2,1)");
  return text;
}

TEST(Canonical, LrcSpellingsCollapseToOneFingerprint) {
  const std::string a = lrc_base();
  // Same config spelled differently: shuffled [code] keys, padded tuple.
  std::string b = kBase;
  b.replace(b.find("mlec = (2+1)/(3+1)"), 18, "mlec = (4+3)/(3+1)");
  b.replace(b.find("repair = R_ALL"), 14,
            "repair = R_ALL\nlrc = ( 4 , 2 , 1 )\nfamily = lrc");
  EXPECT_EQ(scenario_fingerprint(from_text(a)), scenario_fingerprint(from_text(b)));
}

TEST(Canonical, LrcLocalityAndFamilyChangesSeparateFingerprints) {
  const std::uint64_t lrc_fp = scenario_fingerprint(from_text(lrc_base()));
  // Same width, one locality parameter moved: (4,2,1) -> (4,1,2).
  std::string moved = lrc_base();
  moved.replace(moved.find("lrc = (4,2,1)"), 13, "lrc = (4,1,2)");
  EXPECT_NE(scenario_fingerprint(from_text(moved)), lrc_fp);
  // Same (k_n, p_n) arithmetic under plain RS is a different system too.
  std::string rs = kBase;
  rs.replace(rs.find("mlec = (2+1)/(3+1)"), 18, "mlec = (4+3)/(3+1)");
  EXPECT_NE(scenario_fingerprint(from_text(rs)), lrc_fp);
}

TEST(Canonical, MalformedUnitSuffixesAreRejected) {
  for (const char* bad : {"disk_capacity_tb = 18XB", "disk_capacity_tb = TB",
                          "disk_capacity_tb = 1.2.3TB"}) {
    std::string text = kBase;
    text.replace(text.find("disk_capacity_tb = 18"), 21, bad);
    EXPECT_THROW(from_text(text), PreconditionError) << bad;
  }
}

}  // namespace
}  // namespace mlec
