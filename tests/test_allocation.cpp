#include "math/allocation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <numeric>
#include <vector>

#include "math/combin.hpp"
#include "util/error.hpp"

namespace mlec {
namespace {

// Brute-force W(m, s): sum over compositions with parts in [1, D] of
// prod C(D, part).
double brute_ways(std::size_t disks, std::size_t racks, std::size_t failures) {
  if (racks == 0) return failures == 0 ? 1.0 : 0.0;
  double total = 0;
  for (std::size_t a = 1; a <= std::min(disks, failures); ++a)
    total += choose(static_cast<std::int64_t>(disks), static_cast<std::int64_t>(a)) *
             brute_ways(disks, racks - 1, failures - a);
  return total;
}

TEST(Allocation, WaysMatchBruteForce) {
  const BurstAllocationSampler sampler(6, 4, 12);
  for (std::size_t m = 1; m <= 4; ++m) {
    for (std::size_t s = m; s <= std::min<std::size_t>(12, m * 6); ++s) {
      const double expected = brute_ways(6, m, s);
      EXPECT_NEAR(std::exp(sampler.log_ways(m, s)), expected, expected * 1e-9)
          << "m=" << m << " s=" << s;
    }
  }
}

TEST(Allocation, InfeasibleIsMinusInfinity) {
  const BurstAllocationSampler sampler(4, 3, 16);
  EXPECT_TRUE(std::isinf(sampler.log_ways(3, 2)));   // fewer failures than racks
  EXPECT_TRUE(std::isinf(sampler.log_ways(3, 13)));  // more failures than disks
}

TEST(Allocation, SampleRespectsConstraints) {
  const BurstAllocationSampler sampler(10, 5, 23);
  Rng rng(8);
  for (int i = 0; i < 200; ++i) {
    const auto counts = sampler.sample(5, 23, rng);
    ASSERT_EQ(counts.size(), 5u);
    EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0u), 23u);
    for (auto c : counts) {
      EXPECT_GE(c, 1u);
      EXPECT_LE(c, 10u);
    }
  }
}

TEST(Allocation, SampleMatchesExactDistribution) {
  // Small enough to enumerate: 3 racks of 4 disks, 5 failures.
  const std::size_t D = 4, m = 3, s = 5;
  const BurstAllocationSampler sampler(D, m, s);

  // Exact marginal P(f_1 = a).
  std::map<std::size_t, double> expected;
  double total = 0;
  for (std::size_t a = 1; a <= std::min(D, s - (m - 1)); ++a) {
    const double w =
        choose(static_cast<std::int64_t>(D), static_cast<std::int64_t>(a)) * brute_ways(D, m - 1, s - a);
    expected[a] = w;
    total += w;
  }
  for (auto& [a, w] : expected) w /= total;

  Rng rng(123);
  std::map<std::size_t, int> counts;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) ++counts[sampler.sample(m, s, rng)[0]];
  for (const auto& [a, p] : expected)
    EXPECT_NEAR(counts[a] / static_cast<double>(trials), p, 0.01) << "a=" << a;
}

TEST(Allocation, EdgeExactlyOnePerRack) {
  const BurstAllocationSampler sampler(8, 4, 4);
  Rng rng(5);
  const auto counts = sampler.sample(4, 4, rng);
  for (auto c : counts) EXPECT_EQ(c, 1u);
}

TEST(Allocation, EdgeFullRacks) {
  const BurstAllocationSampler sampler(3, 2, 6);
  Rng rng(5);
  const auto counts = sampler.sample(2, 6, rng);
  EXPECT_EQ(counts[0], 3u);
  EXPECT_EQ(counts[1], 3u);
}

TEST(Allocation, RejectsInfeasibleRequests) {
  const BurstAllocationSampler sampler(4, 3, 12);
  Rng rng(1);
  EXPECT_THROW(sampler.sample(3, 2, rng), PreconditionError);
  EXPECT_THROW(sampler.sample(3, 13, rng), PreconditionError);
}

}  // namespace
}  // namespace mlec
