#include "analysis/traffic.hpp"

#include <gtest/gtest.h>

namespace mlec {
namespace {

const DataCenterConfig kDc = DataCenterConfig::paper_default();
const MlecCode kCode = MlecCode::paper_default();

TEST(LostChunkFraction, ClusteredIsTotal) {
  EXPECT_DOUBLE_EQ(lost_chunk_fraction(20, 20, 3, 4), 1.0);
}

TEST(LostChunkFraction, DeclusteredMatchesPaper) {
  // (19*18*17)/(119*118*117) — the paper's 3.1 TB effect for (17+3) in 120.
  const double expected = (19.0 * 18 * 17) / (119.0 * 118 * 117);
  EXPECT_NEAR(lost_chunk_fraction(120, 20, 3, 4), expected, 1e-15);
}

TEST(LostChunkFraction, BelowToleranceIsZero) {
  EXPECT_DOUBLE_EQ(lost_chunk_fraction(120, 20, 3, 3), 0.0);
  EXPECT_DOUBLE_EQ(lost_chunk_fraction(120, 20, 3, 0), 0.0);
}

// The paper's Figure 8 values, reproduced exactly by the closed forms.
TEST(InjectionTraffic, Figure8RepairAll) {
  EXPECT_NEAR(catastrophic_injection_traffic(kDc, kCode, MlecScheme::kCC,
                                             RepairMethod::kRepairAll)
                  .cross_rack_tb(),
              4400.0, 0.1);
  EXPECT_NEAR(catastrophic_injection_traffic(kDc, kCode, MlecScheme::kCD,
                                             RepairMethod::kRepairAll)
                  .cross_rack_tb(),
              26400.0, 0.1);
}

TEST(InjectionTraffic, Figure8FailedChunksOnly) {
  for (auto scheme : kAllMlecSchemes) {
    EXPECT_NEAR(catastrophic_injection_traffic(kDc, kCode, scheme,
                                               RepairMethod::kRepairFailedOnly)
                    .cross_rack_tb(),
                880.0, 0.1)
        << to_string(scheme);
  }
}

TEST(InjectionTraffic, Figure8Hybrid) {
  // C/D and D/D: ~3.1 TB; C/C and D/C: same as R_FCO (injection has no
  // partially repaired stripes).
  EXPECT_NEAR(catastrophic_injection_traffic(kDc, kCode, MlecScheme::kCD,
                                             RepairMethod::kRepairHybrid)
                  .cross_rack_tb(),
              3.11, 0.05);
  EXPECT_NEAR(catastrophic_injection_traffic(kDc, kCode, MlecScheme::kCC,
                                             RepairMethod::kRepairHybrid)
                  .cross_rack_tb(),
              880.0, 0.1);
}

TEST(InjectionTraffic, Figure8Minimum) {
  // >= 4x below R_HYB for every scheme (paper F#4).
  for (auto scheme : kAllMlecSchemes) {
    const double hyb = catastrophic_injection_traffic(kDc, kCode, scheme,
                                                      RepairMethod::kRepairHybrid)
                           .cross_rack_tb();
    const double min = catastrophic_injection_traffic(kDc, kCode, scheme,
                                                      RepairMethod::kRepairMinimum)
                           .cross_rack_tb();
    EXPECT_GE(hyb / min, 4.0) << to_string(scheme);
  }
  EXPECT_NEAR(catastrophic_injection_traffic(kDc, kCode, MlecScheme::kCD,
                                             RepairMethod::kRepairMinimum)
                  .cross_rack_tb(),
              0.778, 0.01);
  EXPECT_NEAR(catastrophic_injection_traffic(kDc, kCode, MlecScheme::kCC,
                                             RepairMethod::kRepairMinimum)
                  .cross_rack_tb(),
              220.0, 0.1);
}

TEST(InjectionTraffic, LocalTrafficOnlyForHybridAndMinimum) {
  for (auto scheme : kAllMlecSchemes) {
    EXPECT_EQ(catastrophic_injection_traffic(kDc, kCode, scheme, RepairMethod::kRepairAll)
                  .local_tb(),
              0.0);
    EXPECT_GT(catastrophic_injection_traffic(kDc, kCode, scheme, RepairMethod::kRepairMinimum)
                  .local_tb(),
              0.0);
  }
}

TEST(AnnualTraffic, NetworkSlecIsHundredsOfTbPerDay) {
  // (7+3) network SLEC at 1% AFR (paper §5.1.4).
  const auto t = slec_network_annual_traffic(kDc, {7, 3}, 0.01);
  EXPECT_NEAR(t.failures_per_year, 576.0, 1e-9);
  EXPECT_GT(t.cross_rack_tb_per_day(), 100.0);
  EXPECT_LT(t.cross_rack_tb_per_day(), 1000.0);
}

TEST(AnnualTraffic, LrcBelowComparableSlec) {
  // (14,2,4) LRC repairs most failures from a 7-chunk group; a (14+6)
  // network SLEC at the same stripe width reads 14 per chunk (paper §5.2.4).
  const auto lrc = lrc_annual_traffic(kDc, {14, 2, 4}, 0.01);
  const auto slec = slec_network_annual_traffic(kDc, {14, 6}, 0.01);
  EXPECT_LT(lrc.cross_rack_tb_per_year, slec.cross_rack_tb_per_year);
}

TEST(AnnualTraffic, MlecOrdersOfMagnitudeBelowBoth) {
  // Catastrophes arrive ~1e-5/yr system-wide; with R_MIN each moves <1 TB.
  const auto mlec = mlec_annual_traffic(kDc, kCode, MlecScheme::kCD,
                                        RepairMethod::kRepairMinimum, 1e-5);
  const auto slec = slec_network_annual_traffic(kDc, {7, 3}, 0.01);
  EXPECT_LT(mlec.cross_rack_tb_per_year, 1.0);
  EXPECT_GT(slec.cross_rack_tb_per_year / std::max(mlec.cross_rack_tb_per_year, 1e-12), 1e6);
}

}  // namespace
}  // namespace mlec
