#include "placement/notation.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace mlec {
namespace {

TEST(Notation, SlecRoundTrip) {
  for (const SlecCode code : {SlecCode{10, 2}, SlecCode{17, 3}, SlecCode{1, 0}}) {
    EXPECT_EQ(parse_slec_code(code.notation()), code);
  }
  EXPECT_EQ(parse_slec_code("7+3"), (SlecCode{7, 3}));
  EXPECT_EQ(parse_slec_code(" ( 7 + 3 ) "), (SlecCode{7, 3}));
}

TEST(Notation, MlecRoundTrip) {
  const auto code = MlecCode::paper_default();
  EXPECT_EQ(parse_mlec_code(code.notation()), code);
  EXPECT_EQ(parse_mlec_code("2+1/2+1"), (MlecCode{{2, 1}, {2, 1}}));
}

TEST(Notation, LrcRoundTrip) {
  const LrcCode code{14, 2, 4};
  EXPECT_EQ(parse_lrc_code(code.notation()), code);
  EXPECT_EQ(parse_lrc_code("4, 2, 2"), (LrcCode{4, 2, 2}));
}

TEST(Notation, SchemesAndMethods) {
  EXPECT_EQ(parse_mlec_scheme("C/C"), MlecScheme::kCC);
  EXPECT_EQ(parse_mlec_scheme("c/d"), MlecScheme::kCD);
  EXPECT_EQ(parse_mlec_scheme("DC"), MlecScheme::kDC);
  for (auto scheme : kAllMlecSchemes)
    EXPECT_EQ(parse_mlec_scheme(to_string(scheme)), scheme);
  for (auto method : kAllRepairMethods)
    EXPECT_EQ(parse_repair_method(to_string(method)), method);
  EXPECT_EQ(parse_repair_method("rmin"), RepairMethod::kRepairMinimum);
  EXPECT_EQ(parse_repair_method("RepairAll"), RepairMethod::kRepairAll);
}

TEST(Notation, GarbageRejected) {
  EXPECT_THROW(parse_slec_code("(10-2)"), PreconditionError);
  EXPECT_THROW(parse_slec_code("(ten+2)"), PreconditionError);
  EXPECT_THROW(parse_mlec_code("(10+2)"), PreconditionError);
  EXPECT_THROW(parse_lrc_code("(14,2)"), PreconditionError);
  EXPECT_THROW(parse_lrc_code("(15,2,4)"), PreconditionError);  // 15 % 2 != 0
  EXPECT_THROW(parse_mlec_scheme("E/F"), PreconditionError);
  EXPECT_THROW(parse_repair_method("R_MAX"), PreconditionError);
}

}  // namespace
}  // namespace mlec
