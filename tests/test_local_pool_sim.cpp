#include "sim/local_pool_sim.hpp"

#include <gtest/gtest.h>

#include "math/markov.hpp"
#include "util/units.hpp"

namespace mlec {
namespace {

// Elevated AFR so Monte Carlo converges; the rate is then cross-checked
// against the Markov closed form under the same assumptions.
LocalPoolSimConfig clustered_cfg(double afr) {
  LocalPoolSimConfig cfg;
  cfg.code = {4, 2};
  cfg.placement = Placement::kClustered;
  cfg.pool_disks = 6;
  cfg.afr = afr;
  cfg.disk_capacity_tb = 60.0;  // long repairs keep overlaps frequent enough to sample
  return cfg;
}

TEST(LocalPoolSim, ClusteredRateMatchesMarkov) {
  const auto cfg = clustered_cfg(0.9);
  Rng rng(11);
  const auto result = simulate_local_pool(cfg, 4000, rng);
  ASSERT_GT(result.catastrophes, 50u);

  const double lambda = cfg.afr / units::kHoursPerYear;
  const double repair_hours =
      cfg.detection_hours + units::hours_to_move(cfg.disk_capacity_tb,
                                                 cfg.bandwidth.effective_disk_mbps());
  const double mttdl =
      erasure_set_mttdl(cfg.code.k, cfg.code.p, lambda, 1.0 / repair_hours, true);
  const double markov_rate = units::kHoursPerYear / mttdl;
  // Markov assumes exponential repairs; the simulator's are deterministic
  // and this regime is hot (lambda*T ~ 0.25), so expect the same magnitude
  // rather than equality: within a factor of two.
  EXPECT_GT(result.catastrophe_rate_per_year(), markov_rate / 2.0);
  EXPECT_LT(result.catastrophe_rate_per_year(), markov_rate * 2.0);
}

TEST(LocalPoolSim, RateScalesSteeplyWithAfr) {
  Rng rng1(3), rng2(4);
  const auto lo = simulate_local_pool(clustered_cfg(0.3), 6000, rng1);
  const auto hi = simulate_local_pool(clustered_cfg(0.9), 6000, rng2);
  ASSERT_GT(hi.catastrophes, 0u);
  // p+1 = 3 overlapping failures: rate ~ afr^3 -> 27x; allow a wide band.
  EXPECT_GT(hi.catastrophe_rate_per_year(),
            8.0 * std::max(lo.catastrophe_rate_per_year(), 1e-9));
}

TEST(LocalPoolSim, DeclusteredPriorityBeatsNoPriority) {
  LocalPoolSimConfig cfg;
  cfg.code = {4, 2};
  cfg.placement = Placement::kDeclustered;
  cfg.pool_disks = 24;
  cfg.afr = 0.9;
  cfg.disk_capacity_tb = 30.0;

  Rng rng1(5), rng2(6);
  cfg.priority_repair = false;
  const auto without = simulate_local_pool(cfg, 3000, rng1);
  cfg.priority_repair = true;
  const auto with = simulate_local_pool(cfg, 3000, rng2);
  ASSERT_GT(without.catastrophes, 20u);
  EXPECT_LT(with.catastrophe_rate_per_year(), without.catastrophe_rate_per_year());
}

TEST(LocalPoolSim, SamplesDescribeCatastrophes) {
  Rng rng(7);
  const auto result = simulate_local_pool(clustered_cfg(0.9), 3000, rng);
  ASSERT_FALSE(result.samples.empty());
  for (const auto& s : result.samples) {
    EXPECT_GE(s.concurrent_failures, 3u);  // p+1
    EXPECT_GE(s.lost_stripe_fraction, 0.0);
    EXPECT_LE(s.lost_stripe_fraction, 1.0);
    EXPECT_GT(s.unrebuilt_tb, 0.0);
    EXPECT_GE(s.time_hours, 0.0);
    EXPECT_LE(s.time_hours, 8766.0);
  }
}

TEST(LocalPoolSim, RepairDurationsObserved) {
  Rng rng(8);
  const auto result = simulate_local_pool(clustered_cfg(0.5), 2000, rng);
  ASSERT_GT(result.single_disk_repair_hours.count(), 100u);
  const double expected = 0.5 + units::hours_to_move(60.0, 40.0);
  EXPECT_NEAR(result.single_disk_repair_hours.mean(), expected, 5.0);
}

TEST(LocalPoolSim, MergeAccumulates) {
  Rng rng(9);
  auto a = simulate_local_pool(clustered_cfg(0.9), 500, rng);
  auto b = simulate_local_pool(clustered_cfg(0.9), 500, rng);
  const auto a_cat = a.catastrophes;
  const auto b_cat = b.catastrophes;
  const auto merged = merge_results({std::move(a), std::move(b)});
  EXPECT_EQ(merged.missions, 1000u);
  EXPECT_EQ(merged.catastrophes, a_cat + b_cat);
  EXPECT_NEAR(merged.pool_years, 1000.0, 1e-9);
}

TEST(LocalPoolSim, ConfigValidation) {
  LocalPoolSimConfig cfg;
  cfg.pool_disks = 5;  // smaller than (17+3)
  Rng rng(1);
  EXPECT_THROW(simulate_local_pool(cfg, 1, rng), PreconditionError);
  cfg = {};
  cfg.placement = Placement::kClustered;
  cfg.pool_disks = 21;  // clustered pool must be exactly k+p
  EXPECT_THROW(simulate_local_pool(cfg, 1, rng), PreconditionError);
}

}  // namespace
}  // namespace mlec
