#include "analysis/tradeoff.hpp"

#include <gtest/gtest.h>

namespace mlec {
namespace {

const DurabilityEnv kEnv{};
const OverheadBand kBand{};  // the paper's ~30%

TEST(Tradeoff, MlecPointsRespectBandAndFit) {
  const auto points = mlec_tradeoff(kEnv, MlecScheme::kCC, RepairMethod::kRepairMinimum, kBand,
                                    /*measure_encoding=*/false);
  ASSERT_FALSE(points.empty());
  for (const auto& pt : points) {
    EXPECT_TRUE(kBand.contains(pt.overhead)) << pt.label;
    EXPECT_GT(pt.nines, 0.0) << pt.label;
    EXPECT_NE(pt.label.find('/'), std::string::npos);
  }
  // Sorted by durability.
  for (std::size_t i = 1; i < points.size(); ++i)
    EXPECT_LE(points[i - 1].nines, points[i].nines);
}

TEST(Tradeoff, PaperDefaultConfigAppears) {
  // (10+2)/(17+3) has 29.2% overhead — inside the band, C/C-constructible.
  const auto points = mlec_tradeoff(kEnv, MlecScheme::kCC, RepairMethod::kRepairMinimum, kBand,
                                    false);
  const bool found = std::any_of(points.begin(), points.end(), [](const TradeoffPoint& pt) {
    return pt.label == "(10+2)/(17+3)";
  });
  EXPECT_TRUE(found);
}

TEST(Tradeoff, SlecPointsForAllPlacements) {
  for (auto scheme : kAllSlecSchemes) {
    const auto points = slec_tradeoff(kEnv, scheme, kBand, false);
    ASSERT_FALSE(points.empty()) << to_string(scheme);
    for (const auto& pt : points) EXPECT_TRUE(kBand.contains(pt.overhead)) << pt.label;
  }
}

TEST(Tradeoff, LrcPointsIncludePaperConfig) {
  const auto points = lrc_tradeoff(kEnv, kBand, false);
  ASSERT_FALSE(points.empty());
  const bool found = std::any_of(points.begin(), points.end(), [](const TradeoffPoint& pt) {
    return pt.label == "(14,2,4)";
  });
  EXPECT_TRUE(found);
}

TEST(Tradeoff, Figure12HighDurabilityRegimeFavorsMlec) {
  // The paper's F#2: beyond ~20 nines MLEC sustains durability growth that
  // SLEC can only buy with ever-wider stripes. Compare the best point of
  // each family at the band.
  const auto mlec = mlec_tradeoff(kEnv, MlecScheme::kCC, RepairMethod::kRepairMinimum, kBand,
                                  false);
  const auto slec = slec_tradeoff(kEnv, {SlecDomain::kLocal, Placement::kClustered}, kBand,
                                  false);
  ASSERT_FALSE(mlec.empty());
  ASSERT_FALSE(slec.empty());
  EXPECT_GT(mlec.back().nines, slec.back().nines);
}

}  // namespace
}  // namespace mlec
