// End-to-end daemon behavior: scenario dedup + memoization through the
// EstimationService, the durable restart path, and the TCP front end with
// two concurrent clients sharing one campaign.
#include "server/server.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "analysis/chaos.hpp"  // diff_estimates: the bit-identity contract
#include "server/client.hpp"
#include "server/service.hpp"
#include "util/error.hpp"

namespace mlec::server {
namespace {

std::string scenario_text() {
  return "[scenario]\n"
         "name = server-e2e\n"
         "[datacenter]\n"
         "racks = 4\n"
         "enclosures_per_rack = 1\n"
         "disks_per_enclosure = 8\n"
         "disk_capacity_tb = 20\n"
         "[code]\n"
         "mlec = (1+0)/(3+1)\n"
         "scheme = C/C\n"
         "repair = R_ALL\n"
         "[failures]\n"
         "afr = 0.5\n"
         "[sim]\n"
         "missions = 120\n"
         "split_missions = 600\n"
         "seed = 42\n";
}

SubmitRequest sim_request() {
  SubmitRequest req;
  req.scenario_ini = scenario_text();
  req.method = "sim";
  req.client = "tester";
  return req;
}

ServiceConfig in_memory_config() {
  ServiceConfig config;
  config.pool = nullptr;
  config.shards = 2;
  config.checkpoint_every = 16;
  return config;
}

TEST(EstimationService, MemoizesTheSecondIdenticalSubmission) {
  EstimationService service(in_memory_config());
  const SubmitOutcome first = service.submit(sim_request());
  EXPECT_FALSE(first.cached);
  service.drain();
  const StoredJob done = service.wait(first.job_id);
  ASSERT_EQ(done.state, "done");
  ASSERT_TRUE(done.estimate.has_value());

  const SubmitOutcome second = service.submit(sim_request());
  EXPECT_TRUE(second.cached);
  ASSERT_TRUE(second.estimate.has_value());
  EXPECT_EQ(diff_estimates(*second.estimate, *done.estimate), "");
  EXPECT_EQ(service.status().counters.at("cache_hits"), 1u);
  EXPECT_EQ(service.status().counters.at("completed"), 1u);
}

TEST(EstimationService, IsomorphicSpellingHitsTheSameCacheEntry) {
  EstimationService service(in_memory_config());
  const SubmitOutcome first = service.submit(sim_request());
  service.drain();

  SubmitRequest respelled = sim_request();
  const auto at = respelled.scenario_ini.find("disk_capacity_tb = 20");
  ASSERT_NE(at, std::string::npos);
  respelled.scenario_ini.replace(at, 21, "disk_capacity_tb = 20000GB");
  const SubmitOutcome second = service.submit(respelled);
  EXPECT_EQ(second.fingerprint, first.fingerprint);
  EXPECT_TRUE(second.cached);
}

TEST(EstimationService, DifferentSeedMissesTheCache) {
  EstimationService service(in_memory_config());
  service.submit(sim_request());
  service.drain();
  SubmitRequest reseeded = sim_request();
  reseeded.seed = 1234;
  const SubmitOutcome outcome = service.submit(reseeded);
  EXPECT_FALSE(outcome.cached);  // same system, different RNG stream
}

TEST(EstimationService, CancelsQueuedWorkBeforeItRuns) {
  EstimationService service(in_memory_config());
  const SubmitOutcome outcome = service.submit(sim_request());
  EXPECT_TRUE(service.cancel(outcome.job_id));
  EXPECT_FALSE(service.cancel(outcome.job_id));  // already terminal
  EXPECT_EQ(service.wait(outcome.job_id).state, "cancelled");
  service.drain();  // nothing left to run
  EXPECT_EQ(service.status().counters.count("completed"), 0u);
}

TEST(EstimationService, EventSinksRunOutsideTheServiceMutex) {
  // Lock-discipline invariant (also encoded as MLEC_EXCLUDES on
  // on_progress/run_job): event sinks are invoked after the service mutex
  // is released, so a sink may re-enter the service. If a sink were ever
  // called under the mutex, this test would deadlock (and the CI timeout
  // would flag it) the moment the sink calls status().
  EstimationService service(in_memory_config());
  const SubmitOutcome submitted = service.submit(sim_request());
  ASSERT_FALSE(submitted.cached);

  std::vector<std::string> states_seen;
  const std::uint64_t token = service.subscribe(
      submitted.job_id, [&](const json::Value& event) {
        // Re-entrant call: takes the service mutex inside a sink.
        const ServiceStatus status = service.status();
        for (const auto& job : status.jobs)
          if (job.id == submitted.job_id) states_seen.push_back(job.state);
        (void)event;
      });
  ASSERT_NE(token, 0u);
  service.drain();

  const StoredJob done = service.wait(submitted.job_id);
  EXPECT_EQ(done.state, "done");
  // The terminal event fired with the job already in its final state.
  ASSERT_FALSE(states_seen.empty());
  EXPECT_EQ(states_seen.back(), "done");
  service.unsubscribe(token);
}

TEST(EstimationService, RejectsBadSubmissions) {
  EstimationService service(in_memory_config());
  SubmitRequest unknown_method = sim_request();
  unknown_method.method = "oracle";
  EXPECT_THROW(service.submit(unknown_method), PreconditionError);

  SubmitRequest bad_scenario = sim_request();
  bad_scenario.scenario_ini += "[sim]\nunknown_key = 1\n";
  EXPECT_THROW(service.submit(bad_scenario), std::exception);  // strict parse
}

TEST(EstimationService, DurableMemoSurvivesRestart) {
  const auto dir =
      (std::filesystem::path(::testing::TempDir()) / "mlec-server-restart").string();
  std::filesystem::remove_all(dir);
  Estimate first_bits;
  {
    ServiceConfig config = in_memory_config();
    config.state_dir = dir;
    EstimationService service(config);
    const SubmitOutcome outcome = service.submit(sim_request());
    service.drain();
    first_bits = *service.wait(outcome.job_id).estimate;
  }
  ServiceConfig config = in_memory_config();
  config.state_dir = dir;
  EstimationService service(config);  // fresh process, same ledger
  const SubmitOutcome outcome = service.submit(sim_request());
  EXPECT_TRUE(outcome.cached);
  ASSERT_TRUE(outcome.estimate.has_value());
  EXPECT_EQ(diff_estimates(*outcome.estimate, first_bits), "");
  std::filesystem::remove_all(dir);
}

/// In-process daemon on an ephemeral port with background runners.
struct DaemonFixture {
  EstimationService service;
  Server server;

  DaemonFixture()
      : service([] {
          ServiceConfig config;
          config.pool = nullptr;
          config.runners = 2;
          config.shards = 2;
          config.checkpoint_every = 16;
          return config;
        }()),
        server(service, ServerConfig{}) {
    service.start();
    server.start();
  }
  ~DaemonFixture() {
    server.stop();
    service.stop();
  }
};

json::Value submit_op(bool wait) {
  json::Value req = json::Value::object();
  req.set("op", "submit");
  req.set("scenario_ini", scenario_text());
  req.set("method", "sim");
  req.set("client", "tester");
  if (wait) req.set("wait", true);
  return req;
}

TEST(Daemon, TwoConcurrentClientsShareOneCampaign) {
  DaemonFixture daemon;
  json::Value responses[2];
  std::thread clients[2];
  for (int i = 0; i < 2; ++i) {
    clients[i] = std::thread([&, i] {
      Client client("127.0.0.1", daemon.server.port());
      responses[i] = client.request(submit_op(/*wait=*/true));
    });
  }
  for (auto& t : clients) t.join();

  Estimate estimates[2];
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(responses[i].bool_or("ok", false)) << json::dump(responses[i]);
    const json::Value* est = responses[i].get("estimate");
    ASSERT_NE(est, nullptr) << json::dump(responses[i]);
    estimates[i] = estimate_from_json(*est);
  }
  // Both clients got the same bits out of one campaign: the second
  // submission either joined the in-flight job or hit the memo cache.
  EXPECT_EQ(diff_estimates(estimates[0], estimates[1]), "");

  Client prober("127.0.0.1", daemon.server.port());
  json::Value status_op = json::Value::object();
  status_op.set("op", "status");
  const json::Value status = prober.request(status_op);
  const json::Value* counters = status.get("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->str_or("submissions", "0"), "2");
  EXPECT_EQ(counters->str_or("completed", "0"), "1");
  const auto hits = json::u64_from_string(counters->str_or("cache_hits", "0")) +
                    json::u64_from_string(counters->str_or("joined", "0"));
  EXPECT_EQ(hits, 1u);
}

TEST(Daemon, WatchStreamsEndWithExactlyOneTerminalEvent) {
  DaemonFixture daemon;
  Client submitter("127.0.0.1", daemon.server.port());
  const json::Value accepted = submitter.request(submit_op(/*wait=*/false));
  ASSERT_TRUE(accepted.bool_or("ok", false));
  const std::string job_id = accepted.str_or("job", "");
  ASSERT_FALSE(job_id.empty());

  json::Value watch_op = json::Value::object();
  watch_op.set("op", "watch");
  watch_op.set("job", job_id);
  Client watcher("127.0.0.1", daemon.server.port());
  std::vector<std::string> kinds;
  json::Value terminal;
  watcher.stream(watch_op, [&](const json::Value& event) {
    const std::string kind = event.str_or("event", "?");
    kinds.push_back(kind);
    if (kind == "progress" || kind == "requeued") return true;
    terminal = event;
    return false;
  });
  ASSERT_FALSE(kinds.empty());
  EXPECT_EQ(kinds.back(), "done");
  for (std::size_t i = 0; i + 1 < kinds.size(); ++i)
    EXPECT_TRUE(kinds[i] == "progress" || kinds[i] == "requeued") << kinds[i];
  ASSERT_NE(terminal.get("estimate"), nullptr);
  EXPECT_GT(estimate_from_json(*terminal.get("estimate")).samples, 0u);
}

TEST(Daemon, ProtocolErrorsKeepTheConnectionAlive) {
  DaemonFixture daemon;
  Client client("127.0.0.1", daemon.server.port());
  json::Value bad_op = json::Value::object();
  bad_op.set("op", "frobnicate");
  EXPECT_FALSE(client.request(bad_op).bool_or("ok", true));

  json::Value bad_submit = json::Value::object();
  bad_submit.set("op", "submit");
  bad_submit.set("scenario_ini", "not an ini at all = [");
  EXPECT_FALSE(client.request(bad_submit).bool_or("ok", true));

  json::Value ping = json::Value::object();
  ping.set("op", "ping");
  EXPECT_TRUE(client.request(ping).bool_or("ok", false));
}

}  // namespace
}  // namespace mlec::server
