#include "analysis/chaos.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <string>

#include "server/chaos_cases.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/stop_token.hpp"

namespace mlec {
namespace {

/// Every test leaves the global fault registry disarmed, pass or fail —
/// a leaked schedule would poison unrelated tests in this process.
class FaultGuard : public ::testing::Test {
 protected:
  void TearDown() override { fault::clear(); }
};

using FaultRegistry = FaultGuard;

TEST_F(FaultRegistry, DisarmedByDefaultAndPointsAreFree) {
  ASSERT_FALSE(fault::enabled());
  MLEC_FAULT_POINT("test.nonexistent");  // must be a no-op, not a crash
  EXPECT_EQ(fault::hit_count("test.nonexistent"), 0u);
}

TEST_F(FaultRegistry, ThrowFiresOnExactlyTheNthHit) {
  fault::configure("test.point=throw@hit=3");
  EXPECT_TRUE(fault::enabled());
  MLEC_FAULT_POINT("test.point");
  MLEC_FAULT_POINT("test.point");
  EXPECT_THROW(MLEC_FAULT_POINT("test.point"), fault::FaultInjectedError);
  MLEC_FAULT_POINT("test.point");  // hit 4: past the trigger, fires no more
  EXPECT_EQ(fault::hit_count("test.point"), 4u);
}

TEST_F(FaultRegistry, FirstNFiresOnEveryLeadingHit) {
  fault::configure("test.point=throw@first=2");
  EXPECT_THROW(MLEC_FAULT_POINT("test.point"), fault::FaultInjectedError);
  EXPECT_THROW(MLEC_FAULT_POINT("test.point"), fault::FaultInjectedError);
  MLEC_FAULT_POINT("test.point");
}

TEST_F(FaultRegistry, EveryNFiresPeriodically) {
  fault::configure("test.point=throw@every=2");
  MLEC_FAULT_POINT("test.point");
  EXPECT_THROW(MLEC_FAULT_POINT("test.point"), fault::FaultInjectedError);
  MLEC_FAULT_POINT("test.point");
  EXPECT_THROW(MLEC_FAULT_POINT("test.point"), fault::FaultInjectedError);
}

TEST_F(FaultRegistry, SeededProbabilityIsDeterministic) {
  auto fire_pattern = [] {
    fault::configure("test.point=throw@p=0.5,seed=9");
    std::string pattern;
    for (int i = 0; i < 32; ++i) {
      try {
        MLEC_FAULT_POINT("test.point");
        pattern += '.';
      } catch (const fault::FaultInjectedError&) {
        pattern += 'X';
      }
    }
    return pattern;
  };
  const std::string first = fire_pattern();
  EXPECT_EQ(first, fire_pattern());  // same seed, same hits -> same pattern
  EXPECT_NE(first.find('X'), std::string::npos);
  EXPECT_NE(first.find('.'), std::string::npos);
}

TEST_F(FaultRegistry, MultiPointSchedulesAndRoundTrip) {
  fault::configure("a.point=crash@hit=2;b.point=delay:250@every=3;c.point=throw");
  const auto specs = fault::active();
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].to_string(), "a.point=crash@hit=2");
  EXPECT_EQ(specs[1].to_string(), "b.point=delay:250@every=3");
  EXPECT_EQ(specs[2].to_string(), "c.point=throw");
  fault::clear();
  EXPECT_FALSE(fault::enabled());
  EXPECT_TRUE(fault::active().empty());
}

TEST_F(FaultRegistry, MalformedSchedulesAreRejected) {
  EXPECT_THROW(fault::configure("no-equals-sign"), PreconditionError);
  EXPECT_THROW(fault::configure("p=bogus-action"), PreconditionError);
  EXPECT_THROW(fault::configure("p=throw@hit=0"), PreconditionError);
  EXPECT_THROW(fault::configure("p=delay"), PreconditionError);
  EXPECT_THROW(fault::configure("p=throw@p=1.5"), PreconditionError);
  EXPECT_FALSE(fault::enabled());  // a failed configure arms nothing
}

TEST_F(FaultRegistry, DelayIsCutShortByScopedCancellation) {
  fault::configure("test.slow=delay:60000");
  StopSource source;
  source.request_stop();  // token already fired: the sleep must return fast
  fault::ScopedCancellation scope(source.token());
  const auto start = std::chrono::steady_clock::now();
  MLEC_FAULT_POINT("test.slow");
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 5000);
}

TEST_F(FaultRegistry, KnownPointsEnumeratesTheWiredLayers) {
  const auto& points = fault::known_points();
  ASSERT_GE(points.size(), 10u);
  auto has = [&](const std::string& name) {
    for (const auto& p : points)
      if (name == p.name) return true;
    return false;
  };
  EXPECT_TRUE(has("journal.rename.pre"));
  EXPECT_TRUE(has("campaign.checkpoint.post"));
  EXPECT_TRUE(has("pool.task.throw"));
  EXPECT_TRUE(has("shard.slow"));
  EXPECT_TRUE(has("estimator.sim.pre"));
  EXPECT_TRUE(has("repair.execute.pre"));
  EXPECT_TRUE(has("server.accept.pre"));
  EXPECT_TRUE(has("server.request.parse"));
  EXPECT_TRUE(has("server.store.save.post"));
}

/// SLEC-as-MLEC toy system, hot enough that a few hundred missions see real
/// failures; small enough that the full sweep (a campaign per case) stays
/// in test-suite time.
Scenario chaos_scenario() {
  Scenario sc;
  sc.name = "chaos-smoke";
  sc.system.dc.racks = 4;
  sc.system.dc.enclosures_per_rack = 1;
  sc.system.dc.disks_per_enclosure = 8;
  sc.system.dc.disk_capacity_tb = 20.0;
  sc.system.code = {{1, 0}, {3, 1}};
  sc.system.scheme = MlecScheme::kCC;
  sc.system.repair = RepairMethod::kRepairAll;
  sc.system.afr = 0.5;
  sc.missions = 160;
  sc.split_missions = 1600;
  sc.seed = 42;
  return sc;
}

TEST_F(FaultGuard, ChaosSweepSurvivesEveryKnownFaultPoint) {
  ChaosOptions options;
  options.workdir =
      (std::filesystem::path(::testing::TempDir()) / "mlec-chaos-test").string();
  // The daemon's plug-in cases cover the server.* fault points; without
  // them the sweep's coverage check would (rightly) fail.
  options.fork_phase = server::fork_chaos_cases();
  options.late_phase = server::late_chaos_cases();
  const ChaosReport report = run_chaos(chaos_scenario(), options);
  EXPECT_GE(report.cases.size(), 10u);
  EXPECT_TRUE(report.all_passed()) << report.table();
  std::filesystem::remove_all(options.workdir);
}

TEST_F(FaultGuard, ChaosOnlyFilterScopesTheSweep) {
  ChaosOptions options;
  options.workdir =
      (std::filesystem::path(::testing::TempDir()) / "mlec-chaos-filtered").string();
  options.only = {"quarantine"};
  const ChaosReport report = run_chaos(chaos_scenario(), options);
  ASSERT_GE(report.cases.size(), 1u);
  for (const auto& c : report.cases)
    EXPECT_NE(c.name.find("quarantine"), std::string::npos) << c.name;
  EXPECT_TRUE(report.all_passed()) << report.table();
  std::filesystem::remove_all(options.workdir);
}

TEST_F(FaultGuard, ChaosRefusesToRunUnderAnArmedSchedule) {
  fault::configure("test.point=throw");
  EXPECT_THROW(run_chaos(chaos_scenario()), PreconditionError);
}

}  // namespace
}  // namespace mlec
