#include "placement/schemes.hpp"

#include <gtest/gtest.h>

#include "placement/codes.hpp"

namespace mlec {
namespace {

TEST(Schemes, NamesMatchPaperNotation) {
  EXPECT_EQ(to_string(MlecScheme::kCC), "C/C");
  EXPECT_EQ(to_string(MlecScheme::kCD), "C/D");
  EXPECT_EQ(to_string(MlecScheme::kDC), "D/C");
  EXPECT_EQ(to_string(MlecScheme::kDD), "D/D");
}

TEST(Schemes, PlacementDecomposition) {
  for (auto scheme : kAllMlecSchemes) {
    EXPECT_EQ(make_scheme(network_placement(scheme), local_placement(scheme)), scheme);
  }
  EXPECT_EQ(network_placement(MlecScheme::kCD), Placement::kClustered);
  EXPECT_EQ(local_placement(MlecScheme::kCD), Placement::kDeclustered);
}

TEST(Schemes, SlecNames) {
  EXPECT_EQ(to_string(SlecScheme{SlecDomain::kLocal, Placement::kClustered}), "Loc-Cp");
  EXPECT_EQ(to_string(SlecScheme{SlecDomain::kNetwork, Placement::kDeclustered}), "Net-Dp");
}

TEST(Schemes, RepairMethodNames) {
  EXPECT_EQ(to_string(RepairMethod::kRepairAll), "R_ALL");
  EXPECT_EQ(to_string(RepairMethod::kRepairFailedOnly), "R_FCO");
  EXPECT_EQ(to_string(RepairMethod::kRepairHybrid), "R_HYB");
  EXPECT_EQ(to_string(RepairMethod::kRepairMinimum), "R_MIN");
}

TEST(Codes, SlecNotationAndOverhead) {
  const SlecCode c{10, 2};
  EXPECT_EQ(c.notation(), "(10+2)");
  EXPECT_EQ(c.width(), 12u);
  EXPECT_NEAR(c.overhead(), 2.0 / 12.0, 1e-12);
}

TEST(Codes, MlecPaperDefault) {
  const auto code = MlecCode::paper_default();
  EXPECT_EQ(code.notation(), "(10+2)/(17+3)");
  EXPECT_EQ(code.stripe_chunks(), 240u);
  // 1 - (10*17)/(12*20) = 1 - 170/240.
  EXPECT_NEAR(code.overhead(), 1.0 - 170.0 / 240.0, 1e-12);
}

TEST(Codes, LrcNotationAndGroups) {
  const LrcCode c{14, 2, 4};
  EXPECT_EQ(c.notation(), "(14,2,4)");
  EXPECT_EQ(c.width(), 20u);
  EXPECT_EQ(c.group_data_chunks(), 7u);
  EXPECT_EQ(c.group_width(), 8u);
  EXPECT_NEAR(c.overhead(), 6.0 / 20.0, 1e-12);
}

TEST(Codes, ValidationFailures) {
  EXPECT_THROW((SlecCode{0, 2}.validate()), PreconditionError);
  EXPECT_THROW((LrcCode{15, 2, 4}.validate()), PreconditionError);  // 15 % 2 != 0
  EXPECT_THROW((LrcCode{4, 0, 1}.validate()), PreconditionError);
}

}  // namespace
}  // namespace mlec
