// CodeModel layer tests: the pluggable code-family interface behind which
// every consumer (planner, executor, fleet sim, closed forms) now talks to
// "the code". The heart is differential testing — RS decodability against
// the MDS count rule over every erasure pattern, LRC decodability against
// the independent maximally-recoverable criterion (placement/lrc.hpp) and
// against actual byte-exact decodes — plus the hand-computed tolerance,
// fraction, and repair-read oracles the closed forms consume.
#include "gf/code_model.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <vector>

#include "placement/lrc.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace mlec {
namespace {

std::vector<std::size_t> mask_to_list(ErasureMask mask, std::size_t width) {
  std::vector<std::size_t> list;
  for (std::size_t i = 0; i < width; ++i)
    if ((mask >> i) & 1U) list.push_back(i);
  return list;
}

/// Encode a random stripe with `model`, zero the shards in `lost`, decode,
/// and compare against the originals. Returns false on any byte mismatch.
bool decode_round_trip(const CodeModel& model, const std::vector<std::size_t>& lost, Rng& rng,
                       std::size_t len = 96) {
  const std::size_t k = model.data_chunks();
  std::vector<std::vector<gf::byte_t>> shards(model.width(), std::vector<gf::byte_t>(len, 0));
  for (std::size_t i = 0; i < k; ++i)
    for (auto& b : shards[i]) b = static_cast<gf::byte_t>(rng.uniform_below(256));
  {
    std::vector<std::span<const gf::byte_t>> data;
    for (std::size_t i = 0; i < k; ++i) data.emplace_back(shards[i]);
    std::vector<std::span<gf::byte_t>> parity;
    for (std::size_t i = k; i < model.width(); ++i) parity.emplace_back(shards[i]);
    model.encode(data, parity);
  }
  const auto pristine = shards;
  for (std::size_t idx : lost) std::fill(shards[idx].begin(), shards[idx].end(), 0xEE);
  model.decode(shards, lost);
  return shards == pristine;
}

// ---------------------------------------------------------------------------
// Differential: RS decodability is exactly the MDS count rule.

TEST(CodeModel, RsCanRepairMatchesCountRuleOverAllPatterns) {
  const std::pair<std::size_t, std::size_t> shapes[] = {{2, 1}, {4, 2}, {4, 3}, {5, 2}, {3, 0}};
  for (const auto& [k, p] : shapes) {
    const auto model = make_code_model(LevelCode::make_rs({k, p}));
    const std::size_t n = k + p;
    for (ErasureMask mask = 0; mask < (ErasureMask{1} << n); ++mask) {
      const bool expect = static_cast<std::size_t>(std::popcount(mask)) <= p;
      EXPECT_EQ(model->can_repair(mask), expect) << "rs(" << k << "+" << p << ") mask=" << mask;
      const auto list = mask_to_list(mask, n);
      EXPECT_EQ(model->can_repair(std::span<const std::size_t>(list)), expect);
    }
    EXPECT_EQ(model->min_tolerance(), p);
    EXPECT_EQ(model->max_tolerance(), p);
    EXPECT_EQ(model->decodable_fraction(p), 1.0);
    EXPECT_EQ(model->decodable_fraction(p + 1), 0.0);
    EXPECT_EQ(model->avg_single_repair_reads(), static_cast<double>(k));
  }
}

// ---------------------------------------------------------------------------
// Differential against the independent maximally-recoverable criterion
// (placement/lrc.hpp), exhaustively over every erasure pattern. MR is an
// upper bound on what ANY code with this layout can decode, so the model
// must never claim a pattern MR calls lost (that would be a soundness
// bug in the generator table). The converse holds in full only for the
// single-global shapes; with r >= 2 globals the Cauchy construction
// meets the r+1 distance guarantee everywhere (asserted via
// min_tolerance) but concedes some deeper patterns that a coefficient-
// tuned MR code would recover — the table prices exactly what the byte
// decoder can do, which is the invariant the rest of the stack needs.

TEST(CodeModel, LrcCanRepairIsSoundAgainstMaximallyRecoverableBound) {
  const LrcCode shapes[] = {{4, 2, 1}, {6, 3, 2}, {6, 2, 2}, {4, 1, 2}};
  for (const LrcCode& c : shapes) {
    const auto model = make_code_model(LevelCode::make_lrc(c));
    const LrcStripeShape shape(c);
    const std::size_t n = c.width();
    EXPECT_EQ(model->min_tolerance(), c.r + 1) << "lrc" << c.notation();
    for (ErasureMask mask = 0; mask < (ErasureMask{1} << n); ++mask) {
      const auto list = mask_to_list(mask, n);
      const bool mr = shape.recoverable(list);
      if (model->can_repair(mask)) {
        EXPECT_TRUE(mr) << "lrc" << c.notation() << " mask=" << mask
                        << ": model claims a pattern MR rules out";
      }
      // Up to r+1 losses the two criteria must agree exactly.
      if (static_cast<std::size_t>(std::popcount(mask)) <= c.r + 1) {
        EXPECT_EQ(model->can_repair(mask), mr)
            << "lrc" << c.notation() << " mask=" << mask;
      }
    }
  }
}

TEST(CodeModel, LrcSingleGlobalMatchesMaximallyRecoverableExactly) {
  const LrcCode c{4, 2, 1};
  const auto model = make_code_model(LevelCode::make_lrc(c));
  const LrcStripeShape shape(c);
  for (ErasureMask mask = 0; mask < (ErasureMask{1} << c.width()); ++mask) {
    const auto list = mask_to_list(mask, c.width());
    EXPECT_EQ(model->can_repair(mask), shape.recoverable(list))
        << "lrc" << c.notation() << " mask=" << mask;
  }
}

// ---------------------------------------------------------------------------
// Differential: whenever the model says decodable, a real byte decode must
// reconstruct exactly; whenever it says lost, decode must refuse.

TEST(CodeModel, LrcDecodabilityAgreesWithByteExactDecodeExhaustively) {
  const LrcCode c{4, 2, 1};  // width 7: all 128 patterns
  const auto model = make_code_model(LevelCode::make_lrc(c));
  Rng rng(2024);
  for (ErasureMask mask = 0; mask < (ErasureMask{1} << c.width()); ++mask) {
    const auto lost = mask_to_list(mask, c.width());
    if (model->can_repair(mask)) {
      EXPECT_TRUE(decode_round_trip(*model, lost, rng)) << "mask=" << mask;
    } else {
      std::vector<std::vector<gf::byte_t>> shards(c.width(), std::vector<gf::byte_t>(16, 0));
      EXPECT_THROW(model->decode(shards, lost), PreconditionError) << "mask=" << mask;
    }
  }
}

TEST(CodeModel, LrcWideShapeSampledPatternsDecodeByteExactly) {
  const LrcCode c{12, 2, 2};  // width 16
  const auto model = make_code_model(LevelCode::make_lrc(c));
  Rng rng(77);
  std::size_t decodable_seen = 0;
  for (int round = 0; round < 260; ++round) {
    const std::size_t losses = 1 + rng.uniform_below(c.l + c.r);
    const auto sampled = rng.sample_without_replacement(c.width(), losses);
    const std::vector<std::size_t> lost(sampled.begin(), sampled.end());
    ErasureMask mask = 0;
    for (std::size_t idx : lost) mask |= ErasureMask{1} << idx;
    const LrcStripeShape shape(c);
    // Soundness versus the MR bound (equality need not hold above r+1
    // losses; see LrcCanRepairIsSoundAgainstMaximallyRecoverableBound).
    if (model->can_repair(mask)) {
      ASSERT_TRUE(shape.recoverable(lost)) << "mask=" << mask;
    }
    if (!model->can_repair(mask)) continue;
    ++decodable_seen;
    ASSERT_TRUE(decode_round_trip(*model, lost, rng)) << "mask=" << mask;
  }
  EXPECT_GE(decodable_seen, 200u);  // the sampler must actually exercise decodes
}

// ---------------------------------------------------------------------------
// Hand-computed structural oracles.

TEST(CodeModel, Lrc421ToleranceStructure) {
  // lrc(4,2,1), width 7: every 2-pattern decodes; of the C(7,3) = 35
  // 3-patterns, 8 are fatal (2 with a whole group gone, 6 with two group
  // members plus the global), so frac(3) = 27/35.
  const auto model = make_code_model(LevelCode::make_lrc({4, 2, 1}));
  EXPECT_EQ(model->min_tolerance(), 2u);
  EXPECT_EQ(model->max_tolerance(), 3u);
  EXPECT_EQ(model->decodable_fraction(2), 1.0);
  EXPECT_NEAR(model->decodable_fraction(3), 27.0 / 35.0, 1e-12);
  EXPECT_EQ(model->decodable_fraction(4), 0.0);
}

TEST(CodeModel, Lrc1222ToleranceAndRepairReads) {
  // lrc(12,2,2): any 3 erasures decode (MR), some 4-patterns do not.
  // Single-failure reads: 14 group members cost 6 (group width 7 minus
  // one), 2 globals cost k = 12 -> mean (14*6 + 2*12)/16 = 6.75 < 12.
  const auto model = make_code_model(LevelCode::make_lrc({12, 2, 2}));
  EXPECT_EQ(model->min_tolerance(), 3u);
  EXPECT_EQ(model->max_tolerance(), 4u);
  EXPECT_LT(model->decodable_fraction(4), 1.0);
  EXPECT_GT(model->decodable_fraction(4), 0.0);
  EXPECT_DOUBLE_EQ(model->avg_single_repair_reads(), 6.75);
  EXPECT_LT(model->avg_single_repair_reads(),
            static_cast<double>(model->data_chunks()));
}

TEST(CodeModel, LrcRepairReadsFollowTheFailurePattern) {
  const auto model = make_code_model(LevelCode::make_lrc({4, 2, 1}));
  // Lone data loss: its group (2 data + 1 local parity) has 2 survivors.
  EXPECT_DOUBLE_EQ(model->single_repair_reads(0), 2.0);
  // Lone local-parity loss: same locality.
  EXPECT_DOUBLE_EQ(model->single_repair_reads(4), 2.0);
  // Lone global-parity loss: needs all k data chunks.
  EXPECT_DOUBLE_EQ(model->single_repair_reads(6), 4.0);
  // Two losses in one group: locality gone, position 0 pays a global decode.
  const ErasureMask both_in_group = (ErasureMask{1} << 0) | (ErasureMask{1} << 1);
  EXPECT_DOUBLE_EQ(model->repair_reads(0, both_in_group), 4.0);
  // Two losses in different groups: each keeps its local repair.
  const ErasureMask split = (ErasureMask{1} << 0) | (ErasureMask{1} << 2);
  EXPECT_DOUBLE_EQ(model->repair_reads(0, split), 2.0);
  EXPECT_DOUBLE_EQ(model->repair_reads(2, split), 2.0);
}

// ---------------------------------------------------------------------------
// Wide RS: the 256-symbol field limit, round-trips at k = 50, and the
// process-wide plan cache.

TEST(CodeModel, WideRsRoundTripsAndValidatesLimits) {
  const auto model = make_code_model(LevelCode::make_wide({50, 10}));
  EXPECT_EQ(model->family(), CodeFamily::kRsWide);
  EXPECT_EQ(model->min_tolerance(), 10u);
  Rng rng(9);
  for (int round = 0; round < 5; ++round) {
    const std::size_t losses = 1 + rng.uniform_below(10);
    const auto sampled = rng.sample_without_replacement(60, losses);
    EXPECT_TRUE(
        decode_round_trip(*model, std::vector<std::size_t>(sampled.begin(), sampled.end()), rng));
  }
  // k < 50 is plain rs, not rs_wide; the field still caps width at 256.
  EXPECT_THROW(make_code_model(LevelCode::make_wide({40, 10})), PreconditionError);
  EXPECT_THROW(make_code_model(LevelCode::make_wide({250, 10})), PreconditionError);
  EXPECT_NO_THROW(make_code_model(LevelCode::make_wide({246, 10})));
}

TEST(CodeModel, FactoryCachesPerParameterSet) {
  const auto a = make_code_model(LevelCode::make_wide({50, 10}));
  const auto b = make_code_model(LevelCode::make_wide({50, 10}));
  EXPECT_EQ(a.get(), b.get());  // one plan/table per process per shape
  const auto c = make_code_model(LevelCode::make_wide({50, 9}));
  EXPECT_NE(a.get(), c.get());
  const auto l1 = make_code_model(LevelCode::make_lrc({4, 2, 1}));
  const auto l2 = make_code_model(LevelCode::make_lrc({4, 2, 1}));
  EXPECT_EQ(l1.get(), l2.get());
  // rs and rs_wide with equal (k, p) are distinct models (different
  // notation, different family tag).
  const auto rs = make_code_model(LevelCode::make_rs({50, 10}));
  EXPECT_NE(rs.get(), a.get());
}

TEST(CodeModel, LrcTableWidthLimitEnforced) {
  EXPECT_THROW(make_code_model(LevelCode::make_lrc({18, 2, 2})), PreconditionError);
  EXPECT_NO_THROW(make_code_model(LevelCode::make_lrc({14, 2, 2})));
}

TEST(CodeModel, NotationIsFamilyQualified) {
  EXPECT_EQ(LevelCode::make_rs({10, 2}).notation(), "rs(10+2)");
  EXPECT_EQ(LevelCode::make_wide({50, 10}).notation(), "rs_wide(50+10)");
  EXPECT_EQ(LevelCode::make_lrc({12, 2, 2}).notation(), "lrc(12,2,2)");
  EXPECT_EQ(parse_code_family("rs"), CodeFamily::kRs);
  EXPECT_EQ(parse_code_family("rs_wide"), CodeFamily::kRsWide);
  EXPECT_EQ(parse_code_family("lrc"), CodeFamily::kLrc);
  EXPECT_THROW(parse_code_family("raptor"), PreconditionError);
}

}  // namespace
}  // namespace mlec
