#include "sim/pool_state.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <utility>
#include <vector>

namespace mlec {
namespace {

PoolRepairModel clustered_model() {
  PoolRepairModel m;
  m.code = {3, 1};
  m.pool_disks = 4;
  m.clustered = true;
  m.detection_hours = 0.5;
  m.disk_capacity_tb = 20.0;
  m.disk_eff_mbps = 40.0;
  m.finalize();
  return m;
}

PoolRepairModel declustered_model(bool priority = true) {
  PoolRepairModel m;
  m.code = {3, 1};
  m.pool_disks = 8;
  m.clustered = false;
  m.priority_repair = priority;
  m.detection_hours = 0.5;
  m.disk_capacity_tb = 20.0;
  m.disk_eff_mbps = 40.0;
  m.finalize();
  return m;
}

TEST(PoolRepairModel, ClusteredRateIsSpareWriteBandwidth) {
  const auto m = clustered_model();
  // 40 MB/s onto one spare = 0.144 TB/h, independent of failure count.
  EXPECT_NEAR(m.clustered_rate_tb_h(), 0.144, 1e-12);
  EXPECT_DOUBLE_EQ(m.per_failure_rate_tb_h(2, 1), m.clustered_rate_tb_h());
}

TEST(PoolRepairModel, DeclusteredBandwidthShrinksWithFailures) {
  const auto m = declustered_model();
  // Table 2: (n-f) * disk_eff / (k_l+1).
  EXPECT_NEAR(m.declustered_bw_tb_h(1), 7.0 * 40.0 / 4.0 * 3600e6 / 1e12, 1e-12);
  EXPECT_GT(m.declustered_bw_tb_h(1), m.declustered_bw_tb_h(3));
  // The aggregate is split across the detected rebuilds.
  EXPECT_DOUBLE_EQ(m.per_failure_rate_tb_h(2, 2), m.declustered_bw_tb_h(2) / 2.0);
}

TEST(PoolRepairModel, NothingRebuildsBeforeDetection) {
  EXPECT_DOUBLE_EQ(clustered_model().per_failure_rate_tb_h(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(declustered_model().per_failure_rate_tb_h(3, 0), 0.0);
}

TEST(PoolRepairModel, DeclusteredLostFractionIsHypergeometricTail) {
  const auto m = declustered_model();
  EXPECT_DOUBLE_EQ(m.declustered_lost_fraction(0), 0.0);
  EXPECT_DOUBLE_EQ(m.declustered_lost_fraction(1), 0.0);  // p_l+1 = 2 needed
  // P(>=2 of a 4-wide stripe on 2 failed of 8 disks) = C(6,4)/C(8,4) = 15/70.
  EXPECT_NEAR(m.declustered_lost_fraction(2), 15.0 / 70.0, 1e-12);
  EXPECT_LT(m.declustered_lost_fraction(2), m.declustered_lost_fraction(3));
  EXPECT_DOUBLE_EQ(m.declustered_lost_fraction(m.pool_disks), 1.0);
}

TEST(PoolRepairModel, CriticalWindowCoversDetectionPlusDemotion) {
  const auto m = declustered_model();
  EXPECT_GT(m.critical_window_hours(1), m.detection_hours);
  EXPECT_GT(m.critical_volume_tb(1), 0.0);
}

TEST(LocalPoolState, DetectionThenCompletionSequencing) {
  const auto m = clustered_model();
  LocalPoolState pool;
  pool.add_failure(0.0, m);
  EXPECT_DOUBLE_EQ(pool.next_event_after(0.0, m), 0.5);  // detection first
  const double finish = 0.5 + 20.0 / m.clustered_rate_tb_h();
  EXPECT_NEAR(pool.next_event_after(0.5, m), finish, 1e-6);

  std::vector<std::pair<double, double>> completions;
  pool.advance_to(finish + 1.0, m,
                  [&](double start, double end) { completions.emplace_back(start, end); });
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_DOUBLE_EQ(completions[0].first, 0.0);
  EXPECT_NEAR(completions[0].second, finish, 1e-6);
  EXPECT_TRUE(pool.failures.empty());
  EXPECT_TRUE(pool.idle(finish + 1.0));
}

TEST(LocalPoolState, AdvanceTracksUnrebuiltVolume) {
  const auto m = clustered_model();
  LocalPoolState pool;
  pool.add_failure(0.0, m);
  EXPECT_DOUBLE_EQ(pool.unrebuilt_tb(), 20.0);
  EXPECT_DOUBLE_EQ(pool.lost_stripe_fraction(m), 1.0);
  pool.advance_to(0.5 + 10.0 / m.clustered_rate_tb_h(), m);  // half rebuilt
  EXPECT_NEAR(pool.unrebuilt_tb(), 10.0, 1e-9);
  EXPECT_NEAR(pool.lost_stripe_fraction(m), 0.5, 1e-9);
}

TEST(LocalPoolState, ClusteredOverlapIsCatastrophic) {
  const auto m = clustered_model();  // p_l = 1: two concurrent failures fatal
  LocalPoolState pool;
  pool.add_failure(0.0, m);
  EXPECT_FALSE(pool.catastrophic(0.0, m));
  pool.advance_to(10.0, m);
  pool.add_failure(10.0, m);
  EXPECT_TRUE(pool.catastrophic(10.0, m));
}

TEST(LocalPoolState, PriorityRepairOnlyFatalInsideCriticalWindow) {
  const auto m = declustered_model(/*priority=*/true);
  LocalPoolState pool;
  pool.add_failure(0.0, m);
  pool.extend_critical_window(0.0, m);  // size 1 >= p_l opens the window
  EXPECT_GT(pool.clear_at, 0.0);

  LocalPoolState inside = pool;
  inside.advance_to(pool.clear_at / 2.0, m);
  inside.add_failure(pool.clear_at / 2.0, m);
  EXPECT_TRUE(inside.catastrophic(pool.clear_at / 2.0, m));

  // Identical overlap after the window has cleared is tolerated.
  LocalPoolState after = pool;
  after.clear_at = 1.0;
  after.add_failure(2.0, m);
  EXPECT_FALSE(after.catastrophic(2.0, m));

  // Without priority reconstruction any p_l+1 overlap is fatal regardless.
  const auto plain = declustered_model(/*priority=*/false);
  EXPECT_TRUE(after.catastrophic(2.0, plain));
}

TEST(LocalPoolState, DeclusteredLossUsesHypergeometricFraction) {
  const auto m = declustered_model();
  LocalPoolState pool;
  pool.add_failure(0.0, m);
  pool.add_failure(0.0, m);
  EXPECT_DOUBLE_EQ(pool.lost_stripe_fraction(m), m.declustered_lost_fraction(2));
}

TEST(LocalPoolState, ResetForgetsEverything) {
  const auto m = clustered_model();
  LocalPoolState pool;
  pool.add_failure(0.0, m);
  pool.extend_critical_window(0.0, m);
  pool.reset();
  EXPECT_TRUE(pool.failures.empty());
  EXPECT_TRUE(pool.idle(0.0));
  EXPECT_DOUBLE_EQ(pool.next_event_after(0.0, m), std::numeric_limits<double>::infinity());
}

}  // namespace
}  // namespace mlec
