#include "util/ini.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace mlec {
namespace {

TEST(Ini, ParsesSectionsAndKeys) {
  const auto ini = IniFile::parse_string(
      "top = 1\n"
      "[alpha]\n"
      "name = hello world  \n"
      "count = 42\n"
      "\n"
      "# comment\n"
      "; also a comment\n"
      "[beta]\n"
      "ratio = 0.25\n");
  EXPECT_EQ(ini.entries(), 4u);
  EXPECT_EQ(ini.get_string("", "top", "?"), "1");
  EXPECT_EQ(ini.get_string("alpha", "name", "?"), "hello world");
  EXPECT_EQ(ini.get_size("alpha", "count", 0), 42u);
  EXPECT_DOUBLE_EQ(ini.get_double("beta", "ratio", 0.0), 0.25);
}

TEST(Ini, FallbacksWhenAbsent) {
  const auto ini = IniFile::parse_string("[s]\nk = v\n");
  EXPECT_FALSE(ini.has("s", "missing"));
  EXPECT_EQ(ini.get_string("s", "missing", "fb"), "fb");
  EXPECT_DOUBLE_EQ(ini.get_double("s", "missing", 2.5), 2.5);
  EXPECT_EQ(ini.get_size("other", "k", 7), 7u);
  EXPECT_TRUE(ini.get_bool("s", "missing", true));
}

TEST(Ini, BooleanSpellings) {
  const auto ini = IniFile::parse_string(
      "[b]\na = true\nb = Yes\nc = 1\nd = off\ne = FALSE\n");
  EXPECT_TRUE(ini.get_bool("b", "a", false));
  EXPECT_TRUE(ini.get_bool("b", "b", false));
  EXPECT_TRUE(ini.get_bool("b", "c", false));
  EXPECT_FALSE(ini.get_bool("b", "d", true));
  EXPECT_FALSE(ini.get_bool("b", "e", true));
}

TEST(Ini, LaterDuplicatesWin) {
  const auto ini = IniFile::parse_string("[s]\nk = 1\nk = 2\n");
  EXPECT_EQ(ini.get_size("s", "k", 0), 2u);
}

TEST(Ini, MalformedInputRejected) {
  EXPECT_THROW(IniFile::parse_string("not a pair\n"), PreconditionError);
  EXPECT_THROW(IniFile::parse_string("[unclosed\n"), PreconditionError);
  EXPECT_THROW(IniFile::parse_string("[]\n"), PreconditionError);
  EXPECT_THROW(IniFile::parse_string("= value\n"), PreconditionError);
}

// Fuzz-derived regressions: shapes the INI fuzzer generates must produce
// line-numbered diagnostics (or parse benignly), never crash or hang.
TEST(Ini, FuzzDuplicateSectionsMergeWithLaterWins) {
  const auto ini =
      IniFile::parse_string("[datacenter]\nracks = 6\n[datacenter]\nracks = 12\n");
  EXPECT_EQ(ini.get_size("datacenter", "racks", 0), 12u);
}

TEST(Ini, FuzzTruncatedLineDiagnosedWithLineNumber) {
  try {
    IniFile::parse_string("[code]\nmlec = (2+1)/(3+1)\nscheme");
    FAIL() << "truncated key-only line must not parse";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
  }
}

TEST(Ini, FuzzNonUtf8BytesAreCarriedOpaquely) {
  // Values are byte strings, not text: invalid UTF-8 must survive untouched.
  const std::string value = "\xff\xfe\x80"
                            "caf\xc3\xa9";
  const auto ini = IniFile::parse_string("[scenario]\nname = " + value + "\n");
  EXPECT_EQ(ini.get_string("scenario", "name", ""), value);
}

TEST(Ini, FuzzControlBytesInKeyPositionDiagnosed) {
  EXPECT_THROW(IniFile::parse_string("\x01\x02\x03\n"), PreconditionError);
  EXPECT_NO_THROW(IniFile::parse_string("\x01\x02 = \x03\n"));  // odd but well-formed
}

TEST(Ini, FuzzWhitespaceOnlyAndUnterminatedFinalLine) {
  EXPECT_EQ(IniFile::parse_string("  \t\r\n\n \t").entries(), 0u);
  const auto ini = IniFile::parse_string("[s]\nk = v");  // no trailing newline
  EXPECT_EQ(ini.get_string("s", "k", ""), "v");
}

TEST(Ini, MalformedValuesRejectedOnAccess) {
  const auto ini = IniFile::parse_string("[s]\nnum = abc\nint = 2.5\nflag = maybe\n");
  EXPECT_THROW(ini.get_double("s", "num", 0.0), PreconditionError);
  EXPECT_THROW(ini.get_size("s", "int", 0), PreconditionError);
  EXPECT_THROW(ini.get_bool("s", "flag", false), PreconditionError);
}

}  // namespace
}  // namespace mlec
