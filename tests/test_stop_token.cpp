#include "util/stop_token.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <thread>

namespace mlec {
namespace {

TEST(StopToken, DefaultTokenNeverStops) {
  StopToken token;
  EXPECT_FALSE(token.stop_possible());
  EXPECT_FALSE(token.stop_requested());
}

TEST(StopToken, RequestStopFlipsAllTokens) {
  StopSource source;
  StopToken a = source.token();
  StopToken b = source.token();
  EXPECT_TRUE(a.stop_possible());
  EXPECT_FALSE(a.stop_requested());
  source.request_stop();
  EXPECT_TRUE(a.stop_requested());
  EXPECT_TRUE(b.stop_requested());
  EXPECT_TRUE(source.stop_requested());
}

TEST(StopToken, TokenOutlivesSource) {
  StopToken token;
  {
    StopSource source;
    token = source.token();
    source.request_stop();
  }
  EXPECT_TRUE(token.stop_requested());
}

TEST(StopToken, DeadlineFires) {
  StopSource source;
  source.set_deadline_after(0.02);
  StopToken token = source.token();
  EXPECT_FALSE(token.stop_requested());
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_TRUE(token.stop_requested());
}

TEST(StopToken, DeadlineCanBeReplaced) {
  StopSource source;
  source.set_deadline_after(0.01);
  source.set_deadline_after(60.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_FALSE(source.stop_requested());
}

TEST(StopToken, WatchedSignalStops) {
  clear_pending_signal_stop();
  StopSource watched;
  watched.watch_signals();
  StopSource unwatched;
  EXPECT_FALSE(watched.stop_requested());
  std::raise(SIGTERM);
  EXPECT_TRUE(signal_stop_pending());
  EXPECT_TRUE(watched.stop_requested());
  EXPECT_FALSE(unwatched.stop_requested());
  clear_pending_signal_stop();
  EXPECT_FALSE(signal_stop_pending());
  EXPECT_FALSE(watched.token().stop_requested());
}

}  // namespace
}  // namespace mlec
