// Behavioral tests for the annotated synchronization primitives
// (util/thread_safety.hpp). The *static* contract — that Clang rejects
// unguarded access — is proven by the negative-compile cases in
// tests/compile_fail/; these tests pin down the runtime semantics the
// wrappers must preserve: mutual exclusion, try_lock, and the
// CondVar::wait atomicity (release-wait-reacquire) that the std
// condition_variable underneath provides.
#include "util/thread_safety.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace mlec {
namespace {

TEST(ThreadSafety, MutexProvidesMutualExclusion) {
  Mutex mutex;
  std::size_t counter = 0;  // unsynchronized int: racy unless the lock works
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(mutex);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<std::size_t>(kThreads) * kIters);
}

TEST(ThreadSafety, TryLockFailsWhileHeldAndSucceedsAfter) {
  Mutex mutex;
  bool acquired_while_held = true;
  {
    MutexLock lock(mutex);
    // Probe from another thread: try_lock on the same thread would be UB.
    std::thread probe([&] { acquired_while_held = mutex.try_lock(); });
    probe.join();
  }
  EXPECT_FALSE(acquired_while_held);
  ASSERT_TRUE(mutex.try_lock());
  mutex.unlock();
}

TEST(ThreadSafety, CondVarHandshake) {
  Mutex mutex;
  CondVar cv;
  bool ready = false;
  bool consumed = false;

  std::thread consumer([&] {
    MutexLock lock(mutex);
    while (!ready) cv.wait(mutex);
    consumed = true;
    cv.notify_all();
  });

  {
    MutexLock lock(mutex);
    ready = true;
    cv.notify_all();
  }
  {
    MutexLock lock(mutex);
    while (!consumed) cv.wait(mutex);
    EXPECT_TRUE(consumed);
  }
  consumer.join();
}

TEST(ThreadSafety, NotifyAllWakesEveryWaiter) {
  Mutex mutex;
  CondVar cv;
  bool go = false;
  std::atomic<int> awake{0};
  constexpr int kWaiters = 4;

  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(mutex);
      while (!go) cv.wait(mutex);
      awake.fetch_add(1);
    });
  }
  {
    MutexLock lock(mutex);
    go = true;
    cv.notify_all();
  }
  for (auto& t : waiters) t.join();
  EXPECT_EQ(awake.load(), kWaiters);
}

// wait() must re-hold the lock when it returns: mutate guarded state right
// after waking and verify no torn/raced updates across many wakeups.
TEST(ThreadSafety, WaitReacquiresBeforeReturning) {
  Mutex mutex;
  CondVar cv;
  int tokens = 0;      // producer increments, consumer decrements
  bool done = false;
  constexpr int kTotal = 500;

  std::thread consumer([&] {
    int eaten = 0;
    MutexLock lock(mutex);
    while (eaten < kTotal) {
      while (tokens == 0 && !done) cv.wait(mutex);
      while (tokens > 0) {
        --tokens;  // safe only if wait() returned with the lock held
        ++eaten;
      }
    }
    EXPECT_EQ(tokens, 0);
  });

  for (int i = 0; i < kTotal; ++i) {
    MutexLock lock(mutex);
    ++tokens;
    cv.notify_one();
  }
  {
    MutexLock lock(mutex);
    done = true;
    cv.notify_all();
  }
  consumer.join();
}

}  // namespace
}  // namespace mlec
