// Durable server state: memo-key semantics and the crash-safe
// save()/load() round trip of the job ledger + memo cache.
#include "server/store.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "util/error.hpp"

namespace mlec::server {
namespace {

std::string temp_dir(const std::string& leaf) {
  const auto dir = std::filesystem::path(::testing::TempDir()) / leaf;
  std::filesystem::remove_all(dir);
  return dir.string();
}

TEST(MemoKey, EveryComponentSeparatesEntries) {
  const std::string base = memo_key(42, "sim", 7, 0.05);
  EXPECT_EQ(base, memo_key(42, "sim", 7, 0.05));
  EXPECT_NE(base, memo_key(43, "sim", 7, 0.05));   // different system
  EXPECT_NE(base, memo_key(42, "dp", 7, 0.05));    // different method
  EXPECT_NE(base, memo_key(42, "sim", 8, 0.05));   // different RNG stream
  EXPECT_NE(base, memo_key(42, "sim", 7, 0.01));   // different stop target
  // rse targets that differ only past float precision still separate:
  // the key prints %.17g, never a rounded form.
  EXPECT_NE(memo_key(42, "sim", 7, 0.1), memo_key(42, "sim", 7, 0.1 + 1e-16));
}

Estimate sample_estimate() {
  Estimate est;
  est.method = "sim";
  est.pdl = 1.5e-9;
  est.nines = 8.823908740944319;
  est.pdl_lo = 1e-9;
  est.pdl_hi = 2e-9;
  est.stochastic = true;
  est.samples = (std::uint64_t{1} << 55) + 3;
  est.elapsed_s = 2.5;
  return est;
}

TEST(Store, SaveLoadRoundTripsTheLedger) {
  const std::string dir = temp_dir("mlec-store-roundtrip");
  {
    Store store(dir);
    store.load();
    store.next_job = 5;
    StoredJob job;
    job.id = "j-4";
    job.client = "alice";
    job.method = "sim";
    job.priority = Priority::kInteractive;
    job.seed = 99;
    job.rse_target = 0.05;
    job.fingerprint = 0xDEADBEEFCAFEBABEull;
    job.scenario_ini = "[scenario]\nname = x\n";
    job.state = "done";
    job.estimate = sample_estimate();
    store.jobs.push_back(job);
    store.memo[memo_key(job.fingerprint, "sim", 99, 0.05)] = sample_estimate();
    store.counters["completed"] = 1;
    store.save();
  }
  Store reloaded(dir);
  reloaded.load();
  EXPECT_EQ(reloaded.next_job, 5u);
  ASSERT_EQ(reloaded.jobs.size(), 1u);
  const StoredJob& job = reloaded.jobs[0];
  EXPECT_EQ(job.id, "j-4");
  EXPECT_EQ(job.client, "alice");
  EXPECT_EQ(job.priority, Priority::kInteractive);
  EXPECT_EQ(job.seed, 99u);
  EXPECT_EQ(job.fingerprint, 0xDEADBEEFCAFEBABEull);
  EXPECT_EQ(job.scenario_ini, "[scenario]\nname = x\n");
  EXPECT_EQ(job.state, "done");
  ASSERT_TRUE(job.estimate.has_value());
  EXPECT_EQ(job.estimate->pdl, sample_estimate().pdl);       // bit-exact
  EXPECT_EQ(job.estimate->samples, sample_estimate().samples);
  ASSERT_EQ(reloaded.memo.size(), 1u);
  EXPECT_EQ(reloaded.memo.begin()->second.pdl, sample_estimate().pdl);
  EXPECT_EQ(reloaded.counters.at("completed"), 1u);
  std::filesystem::remove_all(dir);
}

TEST(Store, AbsentStateFileIsAFreshStore) {
  const std::string dir = temp_dir("mlec-store-fresh");
  Store store(dir);
  store.load();
  EXPECT_EQ(store.next_job, 1u);
  EXPECT_TRUE(store.jobs.empty());
  EXPECT_TRUE(store.memo.empty());
  std::filesystem::remove_all(dir);
}

TEST(Store, InMemoryModeHasNoFilesAndNoJournals) {
  Store store("");
  EXPECT_FALSE(store.persistent());
  store.load();
  store.save();  // both must be harmless no-ops
  EXPECT_TRUE(store.journal_base("j-1").empty());
  store.discard_journals("j-1");
}

TEST(Store, JournalBasePathsArePerJob) {
  const std::string dir = temp_dir("mlec-store-journals");
  Store store(dir);
  EXPECT_NE(store.journal_base("j-1"), store.journal_base("j-2"));
  // discard_journals removes the campaign-suffixed files a job left.
  const std::string journal = store.journal_base("j-1") + ".sim";
  std::ofstream(journal) << "checkpoint-bytes";
  ASSERT_TRUE(std::filesystem::exists(journal));
  store.discard_journals("j-1");
  EXPECT_FALSE(std::filesystem::exists(journal));
  std::filesystem::remove_all(dir);
}

TEST(Store, CorruptStateRefusesToLoad) {
  const std::string dir = temp_dir("mlec-store-corrupt");
  {
    Store store(dir);
    store.save();  // create a valid state.json first
  }
  std::ofstream(std::filesystem::path(dir) / "state.json") << "{not json";
  Store store(dir);
  // save() is atomic, so a malformed ledger means real damage: refuse
  // loudly instead of silently starting empty and orphaning jobs.
  EXPECT_THROW(store.load(), std::exception);
  std::filesystem::remove_all(dir);
}

TEST(Store, FindLocatesJobsById) {
  Store store("");
  StoredJob job;
  job.id = "j-7";
  store.jobs.push_back(job);
  ASSERT_NE(store.find("j-7"), nullptr);
  EXPECT_EQ(store.find("j-7")->id, "j-7");
  EXPECT_EQ(store.find("j-8"), nullptr);
}

}  // namespace
}  // namespace mlec::server
