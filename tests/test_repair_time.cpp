#include "analysis/repair_time.hpp"

#include <gtest/gtest.h>

namespace mlec {
namespace {

RepairTimeModel paper_model() {
  return RepairTimeModel(DataCenterConfig::paper_default(), BandwidthConfig::paper_default(),
                         MlecCode::paper_default());
}

TEST(RepairTime, Table2RowsMatchPaper) {
  const auto model = paper_model();

  const auto cc = model.table2_row(MlecScheme::kCC);
  EXPECT_DOUBLE_EQ(cc.disk_size_tb, 20.0);
  EXPECT_NEAR(cc.single_disk_mbps, 40.0, 0.5);
  EXPECT_DOUBLE_EQ(cc.pool_size_tb, 400.0);
  EXPECT_NEAR(cc.pool_mbps, 250.0, 0.5);

  const auto cd = model.table2_row(MlecScheme::kCD);
  EXPECT_NEAR(cd.single_disk_mbps, 264.0, 1.0);
  EXPECT_DOUBLE_EQ(cd.pool_size_tb, 2400.0);
  EXPECT_NEAR(cd.pool_mbps, 250.0, 0.5);

  const auto dc = model.table2_row(MlecScheme::kDC);
  EXPECT_NEAR(dc.single_disk_mbps, 40.0, 0.5);
  EXPECT_NEAR(dc.pool_mbps, 1363.0, 2.0);

  const auto dd = model.table2_row(MlecScheme::kDD);
  EXPECT_NEAR(dd.single_disk_mbps, 264.0, 1.0);
  EXPECT_NEAR(dd.pool_mbps, 1363.0, 2.0);
}

TEST(RepairTime, Figure6aSingleDisk) {
  const auto model = paper_model();
  // Declustered local repair ~6x faster (paper F#1).
  const double cp = model.single_disk_repair_hours(MlecScheme::kCC);
  const double dp = model.single_disk_repair_hours(MlecScheme::kCD);
  EXPECT_NEAR(cp, 138.9, 0.2);
  EXPECT_NEAR(cp / dp, 6.6, 0.2);
  EXPECT_DOUBLE_EQ(model.single_disk_repair_hours(MlecScheme::kDC), cp);
  EXPECT_DOUBLE_EQ(model.single_disk_repair_hours(MlecScheme::kDD), dp);
}

TEST(RepairTime, Figure6bCatastrophicPool) {
  const auto model = paper_model();
  const double cc = model.catastrophic_repair_hours(MlecScheme::kCC);
  const double cd = model.catastrophic_repair_hours(MlecScheme::kCD);
  const double dc = model.catastrophic_repair_hours(MlecScheme::kDC);
  const double dd = model.catastrophic_repair_hours(MlecScheme::kDD);
  EXPECT_NEAR(cc, 444.4, 0.5);
  EXPECT_NEAR(cd, 2666.7, 1.0);   // paper: ~3K hours, the slowest (F#2)
  EXPECT_NEAR(dc, 81.5, 0.5);     // the fastest (F#3)
  EXPECT_NEAR(dd, 488.9, 0.5);    // slightly slower than C/C (F#4)
  EXPECT_LT(dc, cc);
  EXPECT_LT(cc, dd);
  EXPECT_LT(dd, cd);
}

TEST(RepairTime, Figure9MethodOrderingPerScheme) {
  const auto model = paper_model();
  for (auto scheme : kAllMlecSchemes) {
    const auto rall = model.method_repair_time(scheme, RepairMethod::kRepairAll);
    const auto rfco = model.method_repair_time(scheme, RepairMethod::kRepairFailedOnly);
    const auto rhyb = model.method_repair_time(scheme, RepairMethod::kRepairHybrid);
    const auto rmin = model.method_repair_time(scheme, RepairMethod::kRepairMinimum);

    // Network time strictly shrinks down the method ladder (paper F#1-3).
    EXPECT_GE(rall.network_hours, rfco.network_hours) << to_string(scheme);
    EXPECT_GE(rfco.network_hours, rhyb.network_hours) << to_string(scheme);
    EXPECT_GE(rhyb.network_hours, rmin.network_hours) << to_string(scheme);
    // R_ALL and R_FCO are pure network repairs.
    EXPECT_EQ(rall.local_hours, 0.0);
    EXPECT_EQ(rfco.local_hours, 0.0);
    // R_MIN trades network time for local time (paper F#3).
    EXPECT_GT(rmin.local_hours, 0.0) << to_string(scheme);
  }
}

TEST(RepairTime, Figure9PaperAnchors) {
  const auto model = paper_model();
  // R_FCO reduces network repair 5-30x vs R_ALL (paper F#1).
  for (auto scheme : kAllMlecSchemes) {
    const double ratio =
        model.method_repair_time(scheme, RepairMethod::kRepairAll).network_hours /
        model.method_repair_time(scheme, RepairMethod::kRepairFailedOnly).network_hours;
    EXPECT_GE(ratio, 3.0) << to_string(scheme);
    EXPECT_LE(ratio, 32.0) << to_string(scheme);
  }
  // On C/D, R_HYB's total is similar to R_FCO's (paper F#2).
  const double fco = model.method_repair_time(MlecScheme::kCD, RepairMethod::kRepairFailedOnly)
                         .total_hours();
  const double hyb =
      model.method_repair_time(MlecScheme::kCD, RepairMethod::kRepairHybrid).total_hours();
  EXPECT_NEAR(hyb / fco, 1.0, 0.15);
}

TEST(RepairTime, FlowsAreWellFormed) {
  const auto model = paper_model();
  const BandwidthModel bw(BandwidthConfig::paper_default());
  for (auto scheme : kAllMlecSchemes) {
    EXPECT_GT(bw.available_repair_mbps(model.single_disk_flow(scheme)), 0.0);
    EXPECT_GT(bw.available_repair_mbps(model.local_stage_flow(scheme)), 0.0);
    for (auto method : kAllRepairMethods)
      EXPECT_GT(bw.available_repair_mbps(model.network_stage_flow(scheme, method)), 0.0);
  }
}

}  // namespace
}  // namespace mlec
