#include "core/spec_io.hpp"

#include <gtest/gtest.h>

namespace mlec {
namespace {

TEST(SpecIo, EmptyFileGivesPaperDefaults) {
  const auto spec = load_spec(IniFile::parse_string(""));
  EXPECT_EQ(spec.dc.total_disks(), 57600u);
  EXPECT_EQ(spec.code, MlecCode::paper_default());
  EXPECT_DOUBLE_EQ(spec.afr, 0.01);
  EXPECT_DOUBLE_EQ(spec.detection_hours, 0.5);
}

TEST(SpecIo, OverridesApply) {
  const auto spec = load_spec(IniFile::parse_string(R"(
[datacenter]
racks = 30
disk_capacity_tb = 16

[code]
mlec = (4+2)/(8+2)
scheme = D/D
repair = R_HYB

[failures]
afr = 0.02
)"));
  EXPECT_EQ(spec.dc.racks, 30u);
  EXPECT_DOUBLE_EQ(spec.dc.disk_capacity_tb, 16.0);
  EXPECT_EQ(spec.code, (MlecCode{{4, 2}, {8, 2}}));
  EXPECT_EQ(spec.scheme, MlecScheme::kDD);
  EXPECT_EQ(spec.repair, RepairMethod::kRepairHybrid);
  EXPECT_DOUBLE_EQ(spec.afr, 0.02);
}

TEST(SpecIo, FormatParsesBack) {
  SystemSpec spec;
  spec.scheme = MlecScheme::kDC;
  spec.repair = RepairMethod::kRepairFailedOnly;
  spec.afr = 0.03;
  spec.dc.racks = 24;
  const auto reparsed = load_spec(IniFile::parse_string(format_spec(spec)));
  EXPECT_EQ(reparsed.scheme, spec.scheme);
  EXPECT_EQ(reparsed.repair, spec.repair);
  EXPECT_DOUBLE_EQ(reparsed.afr, spec.afr);
  EXPECT_EQ(reparsed.dc.racks, spec.dc.racks);
  EXPECT_EQ(reparsed.code, spec.code);
}

TEST(SpecIo, ExampleSpecParsesToDefaults) {
  const auto spec = load_spec(IniFile::parse_string(example_spec()));
  EXPECT_EQ(spec.dc.total_disks(), 57600u);
  EXPECT_EQ(spec.code, MlecCode::paper_default());
  // The example picks C/D + R_MIN (the paper's best combination).
  EXPECT_EQ(spec.scheme, MlecScheme::kCD);
  EXPECT_EQ(spec.repair, RepairMethod::kRepairMinimum);
}

TEST(SpecIo, LoadedSpecDrivesTheAnalyzer) {
  const auto spec = load_spec(IniFile::parse_string("[code]\nscheme = C/D\n"));
  const MlecAnalyzer analyzer(spec);
  EXPECT_NEAR(analyzer.repair_bandwidth().single_disk_mbps, 264.4, 0.5);
}

TEST(SpecIo, UnknownKeysAreCollectedWhenAsked) {
  std::vector<std::string> unknown;
  SpecParsePolicy policy;
  policy.unknown_keys = &unknown;
  const auto spec = load_spec(IniFile::parse_string(R"(
[failures]
afr = 0.02
detectoin_hours = 2.0
)"),
                              policy);
  EXPECT_DOUBLE_EQ(spec.afr, 0.02);            // good keys still apply
  EXPECT_DOUBLE_EQ(spec.detection_hours, 0.5);  // the typo'd one does not
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "failures.detectoin_hours");
}

TEST(SpecIo, StrictPolicyTurnsUnknownKeysIntoErrors) {
  SpecParsePolicy policy;
  policy.strict = true;
  try {
    load_spec(IniFile::parse_string("[datacenter]\nraks = 30\n"), policy);
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("datacenter.raks"), std::string::npos);
  }
}

TEST(SpecIo, ScenarioKeysAreUnknownToPlainSpecs) {
  // [sim] belongs to scenario files; load_spec must flag it, load_scenario
  // must consume it.
  const std::string text = "[sim]\nmissions = 5\n";
  std::vector<std::string> unknown;
  SpecParsePolicy policy;
  policy.unknown_keys = &unknown;
  load_spec(IniFile::parse_string(text), policy);
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "sim.missions");

  unknown.clear();
  const auto sc = load_scenario(IniFile::parse_string(text), policy);
  EXPECT_TRUE(unknown.empty());
  EXPECT_EQ(sc.missions, 5u);
}

TEST(SpecIo, ExampleScenarioHasNoUnknownKeys) {
  SpecParsePolicy policy;
  policy.strict = true;
  EXPECT_NO_THROW(load_scenario(IniFile::parse_string(example_scenario()), policy));
}

TEST(SpecIo, BadValuesSurfaceAsErrors) {
  EXPECT_THROW(load_spec(IniFile::parse_string("[code]\nmlec = banana\n")),
               PreconditionError);
  EXPECT_THROW(load_spec(IniFile::parse_string("[failures]\nafr = lots\n")),
               PreconditionError);
}

// Fuzz-derived regressions: every malformed scenario the INI fuzzer found
// interesting must end in a PreconditionError diagnostic, never a crash,
// an InternalError, or a silently wrong Scenario.
TEST(SpecIo, FuzzMalformedScenariosDiagnoseNotCrash) {
  const char* cases[] = {
      "[sim]\nmissions = NaN\nseed = -1\n",
      "[sim]\nmissions = 1e999\n",
      "[code]\nmlec = (2+1)/\n",
      "[code]\nmlec = (0+0)/(0+0)\n",
      "[datacenter]\nracks = 0\n",
      "[datacenter]\nracks = 2.5\n",
      "[failures]\nafr = -0.5\n",
      "[bursts]\nracks = 1,2,\n",
  };
  std::vector<std::string> unknown;
  SpecParsePolicy policy;
  policy.unknown_keys = &unknown;
  for (const char* text : cases) {
    SCOPED_TRACE(text);
    try {
      (void)load_scenario(IniFile::parse_string(text), policy);
      // Some shapes load but must then fail validation downstream; either
      // way no other exception type may escape.
    } catch (const PreconditionError&) {
      // expected diagnostic path
    }
  }
}

TEST(SpecIo, FuzzDuplicateSectionScenarioLoadsLastValue) {
  std::vector<std::string> unknown;
  SpecParsePolicy policy;
  policy.unknown_keys = &unknown;
  const auto scenario = load_scenario(
      IniFile::parse_string("[datacenter]\nracks = 6\n[datacenter]\nracks = 12\n"
                            "[failures]\nafr = 0.02\n"),
      policy);
  EXPECT_EQ(scenario.system.dc.racks, 12u);
  EXPECT_TRUE(unknown.empty());
}

TEST(SpecIo, CodeFamilyKeysRoundTripForEveryFamily) {
  struct Case {
    const char* family;
    CodeFamily expect;
    const char* mlec;
  } cases[] = {
      {"rs", CodeFamily::kRs, "(4+3)/(3+1)"},
      {"rs_wide", CodeFamily::kRsWide, "(50+10)/(3+1)"},
      {"lrc", CodeFamily::kLrc, "(4+3)/(3+1)"},
  };
  for (const auto& c : cases) {
    std::string text = std::string("[code]\nmlec = ") + c.mlec +
                       "\nfamily = " + c.family + "\n";
    if (c.expect == CodeFamily::kLrc) text += "lrc = (4,2,1)\n";
    const auto spec = load_spec(IniFile::parse_string(text));
    EXPECT_EQ(spec.network_family, c.expect) << c.family;
    // format -> parse is the identity on the family axis.
    const auto again = load_spec(IniFile::parse_string(format_spec(spec)));
    EXPECT_EQ(again.network_family, c.expect) << c.family;
    EXPECT_EQ(again.network_lrc, spec.network_lrc) << c.family;
    EXPECT_EQ(again.network_level(), spec.network_level()) << c.family;
  }
}

TEST(SpecIo, LrcKeyParsesTheTriple) {
  const auto spec = load_spec(IniFile::parse_string(
      "[code]\nmlec = (4+3)/(3+1)\nfamily = lrc\nlrc = (4, 2, 1)\n"));
  EXPECT_EQ(spec.network_lrc, (LrcCode{4, 2, 1}));
  EXPECT_EQ(spec.network_level(), LevelCode::make_lrc({4, 2, 1}));
}

TEST(SpecIo, BadFamilyAndLrcValuesAreDiagnosed) {
  EXPECT_THROW(load_spec(IniFile::parse_string("[code]\nfamily = raid6\n")),
               PreconditionError);
  EXPECT_THROW(load_spec(IniFile::parse_string("[code]\nlrc = (4+2+1)\n")),
               PreconditionError);
}

TEST(SpecIo, FuzzNonUtf8ScenarioNameRoundTrips) {
  std::vector<std::string> unknown;
  SpecParsePolicy policy;
  policy.unknown_keys = &unknown;
  const std::string name = "\xff\x80 bytes";
  const auto scenario =
      load_scenario(IniFile::parse_string("[scenario]\nname = " + name + "\n"), policy);
  EXPECT_EQ(scenario.name, name);
  const auto again =
      load_scenario(IniFile::parse_string(format_scenario(scenario)), policy);
  EXPECT_EQ(again.name, name);
}

}  // namespace
}  // namespace mlec
