#include "topology/bandwidth.hpp"

#include <gtest/gtest.h>

namespace mlec {
namespace {

BandwidthModel paper_model() { return BandwidthModel(BandwidthConfig::paper_default()); }

TEST(BandwidthConfig, EffectiveRates) {
  const auto bw = BandwidthConfig::paper_default();
  EXPECT_DOUBLE_EQ(bw.effective_disk_mbps(), 40.0);    // 200 MB/s * 20%
  EXPECT_DOUBLE_EQ(bw.effective_rack_mbps(), 250.0);   // 10 Gbps * 20%
}

TEST(BandwidthConfig, ValidationRejectsBadFraction) {
  BandwidthConfig bw;
  bw.repair_fraction = 0.0;
  EXPECT_THROW(bw.validate(), PreconditionError);
  bw.repair_fraction = 1.5;
  EXPECT_THROW(bw.validate(), PreconditionError);
}

// The four Table 2 bandwidths, derived from first principles in the paper.
TEST(BandwidthModel, Table2SingleDiskClustered) {
  // 19 readers at amp 17, one spare writer: write-bound at 40 MB/s.
  RepairFlow flow;
  flow.read_amp = 17;
  flow.write_amp = 1;
  flow.read_only_disks = 19;
  flow.write_only_disks = 1;
  EXPECT_NEAR(paper_model().available_repair_mbps(flow), 40.0, 1e-9);
}

TEST(BandwidthModel, Table2SingleDiskDeclustered) {
  // 119 shared read/write disks, (17+1) IO bytes per repaired byte.
  RepairFlow flow;
  flow.read_amp = 17;
  flow.write_amp = 1;
  flow.shared_disks = 119;
  EXPECT_NEAR(paper_model().available_repair_mbps(flow), 119.0 * 40 / 18, 1e-9);  // ~264
}

TEST(BandwidthModel, Table2PoolClustered) {
  // 10 source racks, 1 target rack: ingress-bound at 250 MB/s.
  RepairFlow flow;
  flow.read_amp = 10;
  flow.write_amp = 1;
  flow.read_only_disks = 200;
  flow.write_only_disks = 20;
  flow.cross_rack = true;
  flow.read_only_racks = 10;
  flow.write_only_racks = 1;
  EXPECT_NEAR(paper_model().available_repair_mbps(flow), 250.0, 1e-9);
}

TEST(BandwidthModel, Table2PoolDeclustered) {
  // All 60 racks shared, 11 network bytes per repaired byte: ~1363 MB/s.
  RepairFlow flow;
  flow.read_amp = 10;
  flow.write_amp = 1;
  flow.shared_disks = 57000;
  flow.cross_rack = true;
  flow.shared_racks = 60;
  EXPECT_NEAR(paper_model().available_repair_mbps(flow), 60.0 * 250 / 11, 1e-9);  // ~1363.6
}

TEST(BandwidthModel, PicksTheTightestBottleneck) {
  RepairFlow flow;
  flow.read_amp = 1;
  flow.write_amp = 1;
  flow.read_only_disks = 100;  // 4000 MB/s
  flow.write_only_disks = 1;   // 40 MB/s  <- bottleneck
  EXPECT_NEAR(paper_model().available_repair_mbps(flow), 40.0, 1e-9);
}

TEST(BandwidthModel, RepairHours) {
  RepairFlow flow;
  flow.read_amp = 17;
  flow.write_amp = 1;
  flow.read_only_disks = 19;
  flow.write_only_disks = 1;
  // 20 TB at 40 MB/s = 138.9 hours (Figure 6a).
  EXPECT_NEAR(paper_model().repair_hours(20.0, flow), 138.888, 0.01);
  EXPECT_DOUBLE_EQ(paper_model().repair_hours(0.0, flow), 0.0);
}

TEST(BandwidthModel, RequiresParticipants) {
  RepairFlow flow;  // no disks at all
  EXPECT_THROW(paper_model().available_repair_mbps(flow), PreconditionError);
  flow.read_only_disks = 1;
  flow.cross_rack = true;  // but no racks
  EXPECT_THROW(paper_model().available_repair_mbps(flow), PreconditionError);
}

}  // namespace
}  // namespace mlec
