#include "placement/stripe_map.hpp"

#include <gtest/gtest.h>

#include <set>

namespace mlec {
namespace {

DataCenterConfig toy_dc() {
  DataCenterConfig dc;
  dc.racks = 6;
  dc.enclosures_per_rack = 2;
  dc.disks_per_enclosure = 6;
  dc.disk_capacity_tb = 1.28e-6;  // 10 chunks per disk at 128 KB
  dc.chunk_kb = 128.0;
  return dc;
}

const MlecCode kToyCode{{2, 1}, {2, 1}};

class StripeMapSchemes : public ::testing::TestWithParam<MlecScheme> {};

TEST_P(StripeMapSchemes, PlacementInvariantsHold) {
  const Topology topo(toy_dc());
  const StripeMap map(topo, kToyCode, GetParam(), 4);
  ASSERT_FALSE(map.stripes().empty());

  for (const auto& stripe : map.stripes()) {
    ASSERT_EQ(stripe.locals.size(), 3u);  // k_n + p_n

    // Local stripes of one network stripe sit in distinct racks.
    std::set<RackId> racks;
    for (const auto& local : stripe.locals) racks.insert(map.pool_rack(local.pool));
    EXPECT_EQ(racks.size(), 3u);

    for (const auto& local : stripe.locals) {
      ASSERT_EQ(local.disks.size(), 3u);  // k_l + p_l
      // No two chunks of a local stripe on the same disk.
      const std::set<DiskId> disks(local.disks.begin(), local.disks.end());
      EXPECT_EQ(disks.size(), 3u);
      // Every chunk stays inside the stripe's pool.
      const auto pool_disks = map.pool_disks(local.pool);
      const std::set<DiskId> pool_set(pool_disks.begin(), pool_disks.end());
      for (DiskId d : local.disks) EXPECT_TRUE(pool_set.contains(d));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, StripeMapSchemes,
                         ::testing::ValuesIn(kAllMlecSchemes),
                         [](const auto& info) {
                           switch (info.param) {
                             case MlecScheme::kCC: return "CC";
                             case MlecScheme::kCD: return "CD";
                             case MlecScheme::kDC: return "DC";
                             case MlecScheme::kDD: return "DD";
                           }
                           return "unknown";
                         });

TEST(StripeMap, ClusteredNetworkStripesShareGroupAndPosition) {
  const Topology topo(toy_dc());
  const StripeMap map(topo, kToyCode, MlecScheme::kCC, 2);
  const std::size_t pools_per_rack = map.layout().local_pools_per_rack();
  for (const auto& stripe : map.stripes()) {
    std::set<std::size_t> positions, groups;
    for (const auto& local : stripe.locals) {
      positions.insert(local.pool % pools_per_rack);
      groups.insert(map.pool_rack(local.pool) / 3);  // k_n+p_n = 3 racks per group
    }
    EXPECT_EQ(positions.size(), 1u);  // same pool position across the group
    EXPECT_EQ(groups.size(), 1u);
  }
}

TEST(StripeMap, PoolOfDiskIsConsistent) {
  const Topology topo(toy_dc());
  for (auto scheme : kAllMlecSchemes) {
    const StripeMap map(topo, kToyCode, scheme, 2);
    for (LocalPoolId pool = 0; pool < map.total_pools(); ++pool)
      for (DiskId d : map.pool_disks(pool)) EXPECT_EQ(map.pool_of_disk(d), pool);
  }
}

TEST(AssessFailures, Table1Classification) {
  const Topology topo(toy_dc());
  const StripeMap map(topo, kToyCode, MlecScheme::kCC, 1);

  // No failures: everything clean.
  const auto clean = assess_failures(map, {});
  EXPECT_EQ(clean.affected_local_stripes, 0u);
  EXPECT_FALSE(clean.data_loss());

  // One failed chunk in a stripe: affected + locally recoverable.
  const auto& stripe = map.stripes().front();
  const auto one = assess_failures(map, {stripe.locals[0].disks[0]});
  EXPECT_GE(one.affected_local_stripes, 1u);
  EXPECT_EQ(one.lost_local_stripes, 0u);
  EXPECT_EQ(one.catastrophic_local_pools, 0u);
  EXPECT_FALSE(one.data_loss());

  // p_l+1 = 2 failed chunks in one local stripe: a lost local stripe and a
  // catastrophic pool, recoverable at the network level.
  const auto lost =
      assess_failures(map, {stripe.locals[0].disks[0], stripe.locals[0].disks[1]});
  EXPECT_GE(lost.lost_local_stripes, 1u);
  EXPECT_GE(lost.catastrophic_local_pools, 1u);
  EXPECT_GE(lost.recoverable_network_stripes, 1u);
  EXPECT_FALSE(lost.data_loss());

  // Losing p_n+1 = 2 local stripes of one network stripe: data loss.
  const auto fatal = assess_failures(
      map, {stripe.locals[0].disks[0], stripe.locals[0].disks[1], stripe.locals[1].disks[0],
            stripe.locals[1].disks[1]});
  EXPECT_TRUE(fatal.data_loss());
  EXPECT_GE(fatal.lost_network_stripes, 1u);
}

TEST(AssessFailures, OutOfRangeDiskRejected) {
  const Topology topo(toy_dc());
  const StripeMap map(topo, kToyCode, MlecScheme::kCC, 1);
  EXPECT_THROW(assess_failures(map, {99999}), PreconditionError);
}

}  // namespace
}  // namespace mlec
