// The mlecd wire codec: hostile-input limits on the JSON parser, bit-exact
// double round-trips, decimal-string u64s, and the Estimate <-> JSON
// mapping the memo cache's bit-identity contract rides on.
#include "server/protocol.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "server/json.hpp"

namespace mlec::server {
namespace {

TEST(Json, ParsesTheUsualShapes) {
  const json::Value v = json::parse(R"({"a":[1,2.5,-3e2],"b":{"c":true,"d":null},"e":"x"})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.get("a")->as_array().size(), 3u);
  EXPECT_EQ(v.get("a")->as_array()[1].as_number(), 2.5);
  EXPECT_TRUE(v.get("b")->get("c")->as_bool());
  EXPECT_TRUE(v.get("b")->get("d")->is_null());
  EXPECT_EQ(v.str_or("e", ""), "x");
}

TEST(Json, RejectsMalformedInput) {
  for (const char* bad : {"", "{", "[1,]", "{\"a\":}", "nul", "\"unterminated",
                          "{\"a\":1}trailing", "01", "+1", "\"\t\""}) {
    EXPECT_THROW(json::parse(bad), json::Error) << bad;
  }
}

TEST(Json, EnforcesParseLimits) {
  json::ParseLimits tiny;
  tiny.max_bytes = 8;
  EXPECT_THROW(json::parse("\"123456789\"", tiny), json::Error);

  EXPECT_THROW(json::parse(std::string(80, '[') + std::string(80, ']')), json::Error);

  json::ParseLimits few_nodes;
  few_nodes.max_nodes = 4;
  EXPECT_THROW(json::parse("[1,2,3,4,5,6]", few_nodes), json::Error);

  json::ParseLimits short_strings;
  short_strings.max_string_bytes = 4;
  EXPECT_THROW(json::parse("\"too long\"", short_strings), json::Error);
}

TEST(Json, DumpNeverEmitsARawNewlineAndRoundTripsBytes) {
  // Control chars, a backslash, quotes, and deliberately invalid UTF-8:
  // the frame stays one line and the bytes survive the round trip.
  const std::string hostile = std::string("a\nb\tc\x01\"\\") + "\xff\xfe tail";
  json::Value v = json::Value::object();
  v.set("s", hostile);
  const std::string wire = json::dump(v);
  EXPECT_EQ(wire.find('\n'), std::string::npos);
  EXPECT_EQ(json::parse(wire).str_or("s", ""), hostile);
}

TEST(Json, SurrogatePairsDecodeToUtf8) {
  const json::Value v = json::parse("\"\\ud83d\\ude00\"");
  EXPECT_EQ(v.as_string(), "\xF0\x9F\x98\x80");
  EXPECT_THROW(json::parse("\"\\ud83d\""), json::Error);  // lone high surrogate
}

TEST(Json, DoublesRoundTripBitExactly) {
  for (const double x : {0.1, 1.0 / 3.0, 1.2345678901234567e-300, -0.0,
                         6.02214076e23, 5e-324}) {
    json::Value v = json::Value::object();
    v.set("x", x);
    const double back = json::parse(json::dump(v)).num_or("x", 0.0);
    EXPECT_EQ(std::signbit(back), std::signbit(x));
    EXPECT_EQ(back, x);
  }
  json::Value inf = json::Value::object();
  inf.set("x", std::numeric_limits<double>::infinity());
  EXPECT_THROW(json::dump(inf), json::Error);
}

TEST(Json, U64sTravelAsDecimalStrings) {
  EXPECT_EQ(json::u64_from_string(json::u64_to_string(0)), 0u);
  const std::uint64_t max = std::numeric_limits<std::uint64_t>::max();
  EXPECT_EQ(json::u64_from_string(json::u64_to_string(max)), max);
  EXPECT_THROW(json::u64_from_string("18446744073709551616"), json::Error);  // 2^64
  EXPECT_THROW(json::u64_from_string(""), json::Error);
  EXPECT_THROW(json::u64_from_string("12x"), json::Error);
  EXPECT_THROW(json::u64_from_string("-1"), json::Error);
}

TEST(Json, WrongKindMembersThrowInsteadOfDefaulting) {
  const json::Value v = json::parse(R"({"n":"not-a-number"})");
  EXPECT_THROW(v.num_or("n", 0.0), json::Error);
  EXPECT_EQ(v.num_or("absent", 4.0), 4.0);
}

TEST(Protocol, PriorityNamesAndLanes) {
  EXPECT_EQ(parse_priority("interactive"), Priority::kInteractive);
  EXPECT_EQ(parse_priority("normal"), Priority::kNormal);
  EXPECT_EQ(parse_priority("batch"), Priority::kBatch);
  EXPECT_THROW(parse_priority("urgent"), json::Error);
  EXPECT_EQ(std::string(to_string(Priority::kBatch)), "batch");
  EXPECT_EQ(lane_for(Priority::kInteractive), kLaneInteractive);
  EXPECT_EQ(lane_for(Priority::kBatch), kLaneBatch);
}

TEST(Protocol, EstimateRoundTripsBitExactly) {
  Estimate est;
  est.method = "sim";
  est.provenance = "campaign simulation";
  est.pdl = 1.2345678901234567e-7;
  est.nines = -std::log10(est.pdl);
  est.pdl_lo = est.pdl / 3.0;
  est.pdl_hi = est.pdl * 3.0;
  est.stochastic = true;
  est.samples = (std::uint64_t{1} << 60) + 12345;
  est.exposure_hours = 0.1;
  est.cat_rate_per_year = 1.0 / 7.0;
  est.cross_rack_tb = 1234.5678;
  est.coverage = 0.75;
  est.truncated = true;
  est.converged = true;
  est.resumed = true;
  est.degraded = true;
  est.degrade_note = "2 shards quarantined";
  est.events_processed = (std::uint64_t{1} << 61) + 1;
  est.rng_draws = (std::uint64_t{1} << 62) + 7;
  est.arena_allocations = 3;
  est.elapsed_s = 1.5;

  const Estimate back = estimate_from_json(estimate_to_json(est));
  EXPECT_EQ(back.method, est.method);
  EXPECT_EQ(back.provenance, est.provenance);
  EXPECT_EQ(back.pdl, est.pdl);
  EXPECT_EQ(back.nines, est.nines);
  EXPECT_EQ(back.pdl_lo, est.pdl_lo);
  EXPECT_EQ(back.pdl_hi, est.pdl_hi);
  EXPECT_EQ(back.stochastic, est.stochastic);
  EXPECT_EQ(back.samples, est.samples);
  EXPECT_EQ(back.exposure_hours, est.exposure_hours);
  EXPECT_EQ(back.cat_rate_per_year, est.cat_rate_per_year);
  EXPECT_EQ(back.cross_rack_tb, est.cross_rack_tb);
  EXPECT_EQ(back.coverage, est.coverage);
  EXPECT_EQ(back.truncated, est.truncated);
  EXPECT_EQ(back.converged, est.converged);
  EXPECT_EQ(back.resumed, est.resumed);
  EXPECT_EQ(back.degraded, est.degraded);
  EXPECT_EQ(back.degrade_note, est.degrade_note);
  EXPECT_EQ(back.events_processed, est.events_processed);
  EXPECT_EQ(back.rng_draws, est.rng_draws);
  EXPECT_EQ(back.arena_allocations, est.arena_allocations);
  EXPECT_EQ(back.elapsed_s, est.elapsed_s);
}

TEST(Protocol, ZeroPdlComesBackAsInfiniteNines) {
  Estimate est;
  est.method = "dp";
  est.pdl = 0.0;
  est.nines = std::numeric_limits<double>::infinity();
  // nines has no JSON encoding when infinite; it is recomputed from pdl.
  const Estimate back = estimate_from_json(estimate_to_json(est));
  EXPECT_EQ(back.pdl, 0.0);
  EXPECT_TRUE(std::isinf(back.nines));
}

}  // namespace
}  // namespace mlec::server
