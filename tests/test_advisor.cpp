#include "core/advisor.hpp"

#include <gtest/gtest.h>

namespace mlec {
namespace {

TEST(Advisor, LowDurabilityThroughputCriticalPrefersSlec) {
  DeploymentProfile profile;
  profile.required_nines = 10.0;
  profile.throughput_critical = true;
  const auto rec = advise(profile);
  EXPECT_FALSE(rec.use_mlec);
  EXPECT_NE(rec.summary().find("SLEC"), std::string::npos);
}

TEST(Advisor, BurstProneSitePicksCC) {
  DeploymentProfile profile;
  profile.required_nines = 30.0;
  profile.frequent_failure_bursts = true;
  profile.has_devops_team = true;
  const auto rec = advise(profile);
  EXPECT_TRUE(rec.use_mlec);
  EXPECT_EQ(rec.scheme, MlecScheme::kCC);
  EXPECT_EQ(rec.repair, RepairMethod::kRepairMinimum);
}

TEST(Advisor, QuietSitePicksCD) {
  DeploymentProfile profile;
  profile.required_nines = 30.0;
  profile.frequent_failure_bursts = false;
  profile.has_devops_team = true;
  const auto rec = advise(profile);
  EXPECT_EQ(rec.scheme, MlecScheme::kCD);
}

TEST(Advisor, NoDevopsMeansRepairAll) {
  DeploymentProfile profile;
  profile.required_nines = 30.0;
  profile.has_devops_team = false;
  const auto rec = advise(profile);
  EXPECT_EQ(rec.repair, RepairMethod::kRepairAll);
  EXPECT_NE(rec.summary().find("R_ALL"), std::string::npos);
}

TEST(Advisor, RationaleCitesTakeaways) {
  DeploymentProfile profile;
  profile.required_nines = 40.0;
  const auto rec = advise(profile);
  ASSERT_FALSE(rec.rationale.empty());
  bool cites = false;
  for (const auto& line : rec.rationale)
    cites |= line.find("takeaway") != std::string::npos;
  EXPECT_TRUE(cites);
}

}  // namespace
}  // namespace mlec
