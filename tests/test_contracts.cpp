// Contract-macro policy tests: expression/message/location capture, the
// throw-vs-abort mode switch, and the Release compilation guarantees that
// keep MLEC_ASSERT out of the simulation hot loops.
#include "util/error.hpp"

#include <gtest/gtest.h>

#include <string>

namespace mlec {
namespace {

TEST(Contracts, RequireCapturesExpressionMessageAndLocation) {
  try {
    MLEC_REQUIRE(1 + 1 == 3, "arithmetic still works");
    FAIL() << "MLEC_REQUIRE did not report";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 + 1 == 3"), std::string::npos) << what;
    EXPECT_NE(what.find("arithmetic still works"), std::string::npos) << what;
    EXPECT_NE(what.find("test_contracts.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("precondition failed"), std::string::npos) << what;
  }
}

TEST(Contracts, RequirePassesWithoutSideEffects) {
  int evaluations = 0;
  MLEC_REQUIRE(++evaluations > 0, "must not report");
  EXPECT_EQ(evaluations, 1);
}

#ifndef NDEBUG
TEST(Contracts, AssertThrowsInternalErrorWithCapture) {
  try {
    MLEC_ASSERT(2 < 1, "ordering invariant");
    FAIL() << "MLEC_ASSERT did not report";
  } catch (const InternalError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos) << what;
    EXPECT_NE(what.find("ordering invariant"), std::string::npos) << what;
    EXPECT_NE(what.find("invariant violated"), std::string::npos) << what;
  }
}

TEST(Contracts, AssertSupportsMessagelessForm) {
  EXPECT_THROW(MLEC_ASSERT(false), InternalError);
}
#else
TEST(Contracts, AssertCompiledOutInRelease) {
  // The expression must not even be evaluated: hot-loop checks are free.
  int evaluations = 0;
  MLEC_ASSERT(++evaluations > 0, "never evaluated");
  MLEC_ASSERT(false);
  EXPECT_EQ(evaluations, 0);
}
#endif

TEST(ContractsDeathTest, AbortModeAbortsWithCaptureOnStderr) {
  EXPECT_DEATH(
      {
        set_contract_mode(ContractMode::kAbort);
        MLEC_REQUIRE(false, "fail fast");
      },
      "precondition failed: false \\(fail fast\\)");
}

TEST(Contracts, ModeIsReadableAndRestorable) {
  const ContractMode before = contract_mode();
  set_contract_mode(ContractMode::kAbort);
  EXPECT_EQ(contract_mode(), ContractMode::kAbort);
  set_contract_mode(before);
  EXPECT_EQ(contract_mode(), before);
}

}  // namespace
}  // namespace mlec
