// Fair-share scheduling policy: class first, least-spent client within a
// class, FIFO within a client (see server/scheduler.hpp).
#include "server/scheduler.hpp"

#include <gtest/gtest.h>

namespace mlec::server {
namespace {

QueuedJob job(const std::string& id, const std::string& client, Priority priority) {
  QueuedJob j;
  j.id = id;
  j.client = client;
  j.priority = priority;
  return j;
}

TEST(FairShare, PriorityClassAlwaysWins) {
  FairShareScheduler s;
  s.enqueue(job("j-1", "heavy", Priority::kBatch));
  s.enqueue(job("j-2", "heavy", Priority::kNormal));
  s.enqueue(job("j-3", "heavy", Priority::kInteractive));
  // Even a client with a huge bill runs its interactive work first.
  s.charge("heavy", 1'000'000);
  EXPECT_EQ(s.pop()->id, "j-3");
  EXPECT_EQ(s.pop()->id, "j-2");
  EXPECT_EQ(s.pop()->id, "j-1");
  EXPECT_FALSE(s.pop().has_value());
}

TEST(FairShare, LeastSpentClientRunsFirstWithinAClass) {
  FairShareScheduler s;
  s.charge("alice", 5000);
  s.charge("bob", 10);
  s.enqueue(job("j-1", "alice", Priority::kNormal));
  s.enqueue(job("j-2", "bob", Priority::kNormal));
  EXPECT_EQ(s.pop()->id, "j-2");  // bob is the lighter spender
  EXPECT_EQ(s.pop()->id, "j-1");
}

TEST(FairShare, ChargesShiftTheQueueOrderBetweenPops) {
  FairShareScheduler s;
  s.enqueue(job("j-1", "alice", Priority::kBatch));
  s.enqueue(job("j-2", "alice", Priority::kBatch));
  s.enqueue(job("j-3", "bob", Priority::kBatch));
  EXPECT_EQ(s.pop()->id, "j-1");  // tie at 0 spend: FIFO
  s.charge("alice", 100);         // alice's first campaign billed
  EXPECT_EQ(s.pop()->id, "j-3");  // bob now the lighter spender
  EXPECT_EQ(s.pop()->id, "j-2");
}

TEST(FairShare, FifoWithinOneClient) {
  FairShareScheduler s;
  s.enqueue(job("j-1", "alice", Priority::kNormal));
  s.enqueue(job("j-2", "alice", Priority::kNormal));
  s.enqueue(job("j-3", "alice", Priority::kNormal));
  EXPECT_EQ(s.pop()->id, "j-1");
  EXPECT_EQ(s.pop()->id, "j-2");
  EXPECT_EQ(s.pop()->id, "j-3");
}

TEST(FairShare, RemoveCancelsQueuedWork) {
  FairShareScheduler s;
  s.enqueue(job("j-1", "alice", Priority::kNormal));
  s.enqueue(job("j-2", "alice", Priority::kNormal));
  EXPECT_TRUE(s.remove("j-1"));
  EXPECT_FALSE(s.remove("j-1"));  // already gone
  EXPECT_FALSE(s.remove("j-99"));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.pop()->id, "j-2");
  EXPECT_TRUE(s.empty());
}

TEST(FairShare, BestWaitingDrivesPreemption) {
  FairShareScheduler s;
  EXPECT_FALSE(s.best_waiting().has_value());
  s.enqueue(job("j-1", "alice", Priority::kBatch));
  EXPECT_EQ(*s.best_waiting(), Priority::kBatch);
  s.enqueue(job("j-2", "bob", Priority::kInteractive));
  EXPECT_EQ(*s.best_waiting(), Priority::kInteractive);
  s.pop();
  EXPECT_EQ(*s.best_waiting(), Priority::kBatch);
}

TEST(FairShare, SpendAccounting) {
  FairShareScheduler s;
  EXPECT_EQ(s.spent("nobody"), 0u);
  s.charge("alice", 100);
  s.charge("alice", 50);
  EXPECT_EQ(s.spent("alice"), 150u);
  EXPECT_EQ(s.spent_by_client().at("alice"), 150u);
}

}  // namespace
}  // namespace mlec::server
