#include "analysis/encoding.hpp"

#include <gtest/gtest.h>

namespace mlec {
namespace {

TEST(Encoding, MeasurementIsPositiveAndPlausible) {
  const auto m = measure_encoding_throughput(4, 2, 128.0, 0.02);
  EXPECT_EQ(m.k, 4u);
  EXPECT_EQ(m.p, 2u);
  EXPECT_GT(m.data_mbps, 10.0);      // even a slow machine beats 10 MB/s
  EXPECT_LT(m.data_mbps, 1e6);       // and nothing encodes at 1 TB/s scalar
}

TEST(Encoding, MoreParityIsSlower) {
  // p scales work linearly; compare p=1 vs p=8 with margin for timer noise.
  const double p1 = measure_encoding_throughput(10, 1, 128.0, 0.05).data_mbps;
  const double p8 = measure_encoding_throughput(10, 8, 128.0, 0.05).data_mbps;
  EXPECT_GT(p1, p8 * 1.5);
}

TEST(Encoding, InvalidArgumentsRejected) {
  EXPECT_THROW(measure_encoding_throughput(0, 1), PreconditionError);
  EXPECT_THROW(measure_encoding_throughput(4, 0), PreconditionError);
  EXPECT_THROW(measure_encoding_throughput(4, 2, -1.0), PreconditionError);
}

TEST(Encoding, CacheReturnsConsistentValue) {
  const double a = cached_encoding_mbps(6, 2);
  const double b = cached_encoding_mbps(6, 2);
  EXPECT_DOUBLE_EQ(a, b);  // memoized, not re-measured
}

TEST(Encoding, MlecCompositionBelowBothStages) {
  const MlecCode code{{4, 1}, {6, 2}};
  const double combined = mlec_encoding_mbps(code);
  const double net = cached_encoding_mbps(4, 1);
  const double loc = cached_encoding_mbps(6, 2);
  EXPECT_LT(combined, net);
  EXPECT_LT(combined, loc);
  // Harmonic composition: 1/c = 1/a + 1/b.
  EXPECT_NEAR(1.0 / combined, 1.0 / net + 1.0 / loc, 0.2 / combined);
}

TEST(Encoding, LrcCompositionIsFinite) {
  const double gbps = lrc_encoding_mbps({14, 2, 4}) / 1e3;
  EXPECT_GT(gbps, 0.0);
}

}  // namespace
}  // namespace mlec
