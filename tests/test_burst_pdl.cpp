#include "analysis/burst_pdl.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "placement/stripe_map.hpp"
#include "sim/failure_gen.hpp"

namespace mlec {
namespace {

TEST(Helpers, SaturatingLoss) {
  EXPECT_DOUBLE_EQ(saturating_loss(0.0, 1e10), 0.0);
  EXPECT_DOUBLE_EQ(saturating_loss(1.0, 5.0), 1.0);
  EXPECT_NEAR(saturating_loss(0.5, 1.0), 0.5, 1e-12);
  EXPECT_NEAR(saturating_loss(1e-10, 1e10), 1.0 - std::exp(-1.0), 1e-3);
  EXPECT_NEAR(saturating_loss(1e-15, 1e5), 1e-10, 1e-13);
}

// Exhaustive check of the no-pool-over-threshold DP against enumeration.
double brute_no_pool_reaches(std::size_t pools, std::size_t pool_size, std::size_t failures,
                             std::size_t threshold) {
  const std::size_t disks = pools * pool_size;
  // Enumerate all C(disks, failures) subsets via bitmask (small cases only).
  double ok = 0, total = 0;
  for (std::size_t mask = 0; mask < (1u << disks); ++mask) {
    if (static_cast<std::size_t>(__builtin_popcount(mask)) != failures) continue;
    total += 1;
    bool fine = true;
    for (std::size_t pool = 0; pool < pools && fine; ++pool) {
      std::size_t count = 0;
      for (std::size_t d = 0; d < pool_size; ++d)
        count += (mask >> (pool * pool_size + d)) & 1;
      fine = count < threshold;
    }
    ok += fine ? 1 : 0;
  }
  return ok / total;
}

TEST(Helpers, ProbNoPoolReachesMatchesEnumeration) {
  for (std::size_t f = 1; f <= 6; ++f)
    for (std::size_t t = 1; t <= 3; ++t)
      EXPECT_NEAR(prob_no_pool_reaches(4, 3, f, t), brute_no_pool_reaches(4, 3, f, t), 1e-9)
          << "f=" << f << " t=" << t;
}

TEST(Helpers, ProbNoPoolReachesEdges) {
  EXPECT_DOUBLE_EQ(prob_no_pool_reaches(5, 4, 0, 2), 1.0);
  EXPECT_DOUBLE_EQ(prob_no_pool_reaches(5, 4, 3, 0), 0.0);
  // All disks failed: every pool is saturated.
  EXPECT_DOUBLE_EQ(prob_no_pool_reaches(2, 3, 6, 3), 0.0);
}

// Brute-force the random-rack-choice tail by enumerating rack subsets and
// loss outcomes.
double brute_rack_choice(const std::vector<double>& prob, std::size_t total, std::size_t choose,
                         std::size_t threshold) {
  const std::size_t a = prob.size();
  std::vector<std::size_t> racks(total);
  double acc = 0, subsets = 0;
  // Enumerate chosen subsets via bitmask over `total` racks.
  for (std::size_t mask = 0; mask < (1u << total); ++mask) {
    if (static_cast<std::size_t>(__builtin_popcount(mask)) != choose) continue;
    subsets += 1;
    // Enumerate loss outcomes of the chosen affected racks.
    std::vector<std::size_t> affected;
    for (std::size_t r = 0; r < a; ++r)
      if (mask & (1u << r)) affected.push_back(r);
    for (std::size_t lm = 0; lm < (1u << affected.size()); ++lm) {
      double p = 1.0;
      std::size_t losses = 0;
      for (std::size_t i = 0; i < affected.size(); ++i) {
        if (lm & (1u << i)) {
          p *= prob[affected[i]];
          ++losses;
        } else {
          p *= 1.0 - prob[affected[i]];
        }
      }
      if (losses >= threshold) acc += p;
    }
  }
  return acc / subsets;
}

TEST(Helpers, RandomRackChoiceTailMatchesEnumeration) {
  const std::vector<double> probs{0.9, 0.4, 0.15, 0.7};
  for (std::size_t choose = 1; choose <= 6; ++choose)
    for (std::size_t t = 1; t <= 3; ++t)
      EXPECT_NEAR(random_rack_choice_tail(probs, 8, choose, t),
                  brute_rack_choice(probs, 8, choose, t), 1e-9)
          << "choose=" << choose << " t=" << t;
}

TEST(Helpers, RandomRackChoiceEdges) {
  EXPECT_DOUBLE_EQ(random_rack_choice_tail({1.0, 1.0}, 4, 3, 4), 0.0);  // t > choose
  EXPECT_DOUBLE_EQ(random_rack_choice_tail({0.5}, 4, 2, 0), 1.0);
  // All racks affected with certain loss: tail is 1 when t <= choose.
  EXPECT_NEAR(random_rack_choice_tail({1, 1, 1, 1}, 4, 2, 2), 1.0, 1e-12);
}

// --- engine-level properties on the paper topology ---

class MlecBurstSchemes : public ::testing::TestWithParam<MlecScheme> {};

TEST_P(MlecBurstSchemes, PaperFinding3ZeroCells) {
  BurstPdlConfig cfg;
  cfg.trials_per_cell = 50;
  const BurstPdlEngine engine(cfg);
  const auto code = MlecCode::paper_default();
  // F#3: any p_n = 2 full rack failures are survivable...
  EXPECT_EQ(engine.mlec_cell(code, GetParam(), 1, 60), 0.0);
  EXPECT_EQ(engine.mlec_cell(code, GetParam(), 2, 120), 0.0);
  // ...and x+2*(p_l+1)... at most p_n catastrophic pools with x+8 failures
  // over x racks (each needs p_l+1 = 4 in one rack).
  EXPECT_EQ(engine.mlec_cell(code, GetParam(), 10, 18), 0.0);
}

TEST_P(MlecBurstSchemes, InfeasibleCellsReportZero) {
  BurstPdlConfig cfg;
  cfg.trials_per_cell = 10;
  const BurstPdlEngine engine(cfg);
  EXPECT_EQ(engine.mlec_cell(MlecCode::paper_default(), GetParam(), 10, 5), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, MlecBurstSchemes, ::testing::ValuesIn(kAllMlecSchemes));

TEST(MlecBurst, Finding4ConcentrationAtPnPlus1Racks) {
  BurstPdlConfig cfg;
  cfg.trials_per_cell = 400;
  const BurstPdlEngine engine(cfg);
  const auto code = MlecCode::paper_default();
  // F#2/F#4: for D/D, 60 failures in 3 racks beat 60 failures in 30 racks.
  const double concentrated = engine.mlec_cell(code, MlecScheme::kDD, 3, 60);
  const double scattered = engine.mlec_cell(code, MlecScheme::kDD, 30, 60);
  EXPECT_GT(concentrated, scattered * 10);
}

TEST(MlecBurst, Finding7DDWorstAtHotCell) {
  BurstPdlConfig cfg;
  cfg.trials_per_cell = 400;
  const BurstPdlEngine engine(cfg);
  const auto code = MlecCode::paper_default();
  const double dd = engine.mlec_cell(code, MlecScheme::kDD, 3, 60);
  const double cc = engine.mlec_cell(code, MlecScheme::kCC, 3, 60);
  const double dc = engine.mlec_cell(code, MlecScheme::kDC, 3, 60);
  EXPECT_GT(dd, dc);
  EXPECT_GT(dc, cc);
}

TEST(SlecBurst, PaperSection513Patterns) {
  BurstPdlConfig cfg;
  cfg.trials_per_cell = 300;
  const BurstPdlEngine engine(cfg);
  const SlecCode code{7, 3};

  // Net-Cp survives anything confined to <= p racks.
  EXPECT_EQ(engine.slec_cell(code, {SlecDomain::kNetwork, Placement::kClustered}, 3, 60), 0.0);
  // Local SLEC is hit by localized bursts; network SLEC by scattered ones.
  const double loc_localized =
      engine.slec_cell(code, {SlecDomain::kLocal, Placement::kClustered}, 1, 60);
  const double loc_scattered =
      engine.slec_cell(code, {SlecDomain::kLocal, Placement::kClustered}, 60, 60);
  EXPECT_GT(loc_localized, loc_scattered);
  const double net_scattered =
      engine.slec_cell(code, {SlecDomain::kNetwork, Placement::kDeclustered}, 60, 60);
  const double net_localized =
      engine.slec_cell(code, {SlecDomain::kNetwork, Placement::kDeclustered}, 4, 60);
  EXPECT_GT(net_scattered, net_localized);
}

TEST(LrcBurst, ScatteredWorseThanLocalized) {
  BurstPdlConfig cfg;
  cfg.trials_per_cell = 200;
  const BurstPdlEngine engine(cfg);
  const LrcCode code{14, 2, 4};
  const double scattered = engine.lrc_cell(code, 50, 60);
  const double localized = engine.lrc_cell(code, 3, 60);
  EXPECT_GT(scattered, localized);
}

TEST(Heatmaps, SweepShapesAndLabels) {
  BurstPdlConfig cfg;
  cfg.trials_per_cell = 5;
  const BurstPdlEngine engine(cfg);
  const auto map = engine.mlec_heatmap(MlecCode::paper_default(), MlecScheme::kCC, 20, 60, 60,
                                       &global_pool());
  // x: 1..5 (always included so the hot p_n+1 column is visible) + 20,40,60.
  ASSERT_EQ(map.x_labels.size(), 8u);
  EXPECT_EQ(map.x_labels.front(), 1);
  EXPECT_EQ(map.x_labels.back(), 60);
  ASSERT_EQ(map.y_labels.size(), 3u);
  EXPECT_EQ(map.y_labels.front(), 60);  // descending rows like the paper
  EXPECT_EQ(map.values.size(), 3u);
  for (const auto& row : map.values) EXPECT_EQ(row.size(), 8u);
}

// Cross-validation against brute-force chunk-level assessment on a toy
// system where raw Monte Carlo converges.
TEST(CrossValidation, EngineMatchesChunkLevelMonteCarlo) {
  DataCenterConfig dc;
  dc.racks = 6;
  dc.enclosures_per_rack = 2;
  dc.disks_per_enclosure = 6;
  dc.disk_capacity_tb = 1.28e-6;  // 10 chunks/disk keeps stripe counts real
  dc.chunk_kb = 128.0;
  const MlecCode code{{2, 1}, {2, 1}};

  BurstPdlConfig cfg;
  cfg.dc = dc;
  cfg.trials_per_cell = 4000;
  const BurstPdlEngine engine(cfg);

  const Topology topo(dc);
  Rng rng(2024);
  for (const auto scheme : kAllMlecSchemes) {
    const std::size_t racks = 3, failures = 6;
    const double analytic = engine.mlec_cell(code, scheme, racks, failures);

    // Brute force: fresh random placement + burst each trial, materializing
    // the full chunk density (total chunks / chunks per network stripe,
    // spread over the scheme's network pools).
    const std::size_t trials = 4000;
    std::size_t losses = 0;
    const PoolLayout layout(dc, code, scheme);
    const std::size_t density = static_cast<std::size_t>(
        layout.total_network_stripes() / static_cast<double>(layout.network_pools()) + 0.5);
    for (std::size_t t = 0; t < trials; ++t) {
      const StripeMap map(topo, code, scheme, density, rng());
      const auto burst = generate_burst(topo, racks, failures, 0.0, rng);
      std::vector<DiskId> failed;
      for (const auto& ev : burst) failed.push_back(ev.disk);
      losses += assess_failures(map, failed).data_loss() ? 1 : 0;
    }
    const double brute = static_cast<double>(losses) / trials;
    // Agreement within Monte Carlo error plus the engine's independence
    // approximations: generous band, but both must be the same magnitude.
    const double tol = std::max(0.3 * std::max(analytic, brute), 0.012);
    EXPECT_NEAR(analytic, brute, tol) << to_string(scheme);
  }
}

}  // namespace
}  // namespace mlec
