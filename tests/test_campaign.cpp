#include "runtime/campaign.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "runtime/fleet_campaign.hpp"
#include "runtime/journal.hpp"
#include "util/error.hpp"

namespace mlec {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

/// 6 racks x 2 enclosures x 8 disks, hot enough that 64 one-year missions
/// see failures, catastrophes, and the occasional loss. Rack and enclosure
/// counts respect the (2+1)/(3+1) clustered-placement divisibility rules.
FleetSimConfig small_fleet() {
  FleetSimConfig cfg;
  cfg.dc.racks = 6;
  cfg.dc.enclosures_per_rack = 2;
  cfg.dc.disks_per_enclosure = 8;
  cfg.dc.disk_capacity_tb = 20.0;
  cfg.code = {{2, 1}, {3, 1}};
  cfg.failures.afr = 0.5;
  return cfg;
}

void expect_identical(const FleetSimResult& a, const FleetSimResult& b) {
  EXPECT_EQ(a.missions, b.missions);
  EXPECT_EQ(a.data_loss_missions, b.data_loss_missions);
  EXPECT_EQ(a.data_loss_events, b.data_loss_events);
  EXPECT_EQ(a.disk_failures, b.disk_failures);
  EXPECT_EQ(a.catastrophic_pool_events, b.catastrophic_pool_events);
  EXPECT_EQ(a.cross_rack_tb, b.cross_rack_tb);  // bit-exact, not approximate
  EXPECT_TRUE(a.loss_time_hours == b.loss_time_hours);
  EXPECT_TRUE(a.catastrophe_exposure_hours == b.catastrophe_exposure_hours);
}

TEST(CampaignAccumulator, RoundTripsThroughStream) {
  CampaignAccumulator acc;
  acc.counter("events") = 42;
  acc.scalar("tb") = 3.25;
  acc.stats("latency").add(1.0);
  acc.stats("latency").add(2.5);
  std::stringstream ss;
  acc.save(ss);
  const auto back = CampaignAccumulator::load(ss);
  EXPECT_TRUE(acc == back);
  EXPECT_EQ(back.counter("events"), 42u);
  EXPECT_EQ(back.scalar("tb"), 3.25);
  EXPECT_EQ(back.stats("latency").count(), 2u);
}

TEST(CampaignAccumulator, ConstLookupOfMissingSlotIsZero) {
  const CampaignAccumulator acc;
  EXPECT_EQ(acc.counter("nope"), 0u);
  EXPECT_EQ(acc.scalar("nope"), 0.0);
  EXPECT_EQ(acc.stats("nope").count(), 0u);
}

TEST(CampaignAccumulator, MergeRejectsMismatchedLayout) {
  CampaignAccumulator a;
  a.counter("x") = 1;
  CampaignAccumulator b;
  b.counter("y") = 2;
  EXPECT_THROW(a.merge(b), PreconditionError);
}

TEST(CampaignJournal, RoundTripsThroughFile) {
  CampaignJournal journal;
  journal.seed = 7;
  journal.total_units = 100;
  journal.shards = 1;
  journal.fingerprint = fingerprint_of("workload-v1");
  ShardRecord rec;
  rec.shard = 1;
  rec.attempt = 2;
  rec.assigned = 50;
  rec.done = 30;
  rec.rng_state = {1, 2, 3, 4};
  rec.acc.counter("missions") = 30;
  journal.records.push_back(rec);

  const auto path = temp_path("journal_roundtrip.bin");
  journal.save_file(path);
  const auto back = CampaignJournal::load_file(path);
  EXPECT_EQ(back.seed, 7u);
  EXPECT_EQ(back.total_units, 100u);
  EXPECT_EQ(back.shards, 1u);
  EXPECT_EQ(back.fingerprint, journal.fingerprint);
  ASSERT_EQ(back.records.size(), 1u);
  EXPECT_EQ(back.records[0].shard, 1u);
  EXPECT_EQ(back.records[0].rng_state, (std::array<std::uint64_t, 4>{1, 2, 3, 4}));
  EXPECT_TRUE(back.records[0].acc == rec.acc);
  std::remove(path.c_str());
}

TEST(CampaignJournal, RejectsGarbage) {
  const auto path = temp_path("journal_garbage.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a journal at all";
  }
  EXPECT_THROW(CampaignJournal::load_file(path), PreconditionError);
  std::remove(path.c_str());
}

TEST(Campaign, RunsToCompletionWithoutCheckpointing) {
  CampaignConfig cfg;
  cfg.total_units = 100;
  cfg.seed = 11;
  cfg.shards = 4;
  cfg.checkpoint_every = 8;
  auto factory = [](std::uint32_t, Rng& rng) -> CampaignRunner::UnitRunner {
    return [&rng](CampaignAccumulator& acc) {
      ++acc.counter("units");
      if (rng.uniform() < 0.25) ++acc.counter("hits");
    };
  };
  CampaignRunner runner(cfg, factory);
  const auto [acc, report] = runner.run();
  EXPECT_EQ(acc.counter("units"), 100u);
  EXPECT_TRUE(report.complete());
  EXPECT_FALSE(report.truncated);
  EXPECT_FALSE(report.converged);
  EXPECT_FALSE(report.resumed);
  EXPECT_EQ(report.quarantined(), 0u);
  ASSERT_EQ(report.shards.size(), 4u);
  for (const auto& s : report.shards) {
    EXPECT_EQ(s.attempts, 1u);
    EXPECT_EQ(s.done, s.assigned);
  }
}

TEST(Campaign, UnitBudgetTruncatesAtBatchBoundaries) {
  CampaignConfig cfg;
  cfg.total_units = 64;
  cfg.seed = 5;
  cfg.shards = 4;
  cfg.checkpoint_every = 4;
  cfg.unit_budget = 32;
  auto factory = [](std::uint32_t, Rng&) -> CampaignRunner::UnitRunner {
    return [](CampaignAccumulator& acc) { ++acc.counter("units"); };
  };
  CampaignRunner runner(cfg, factory);
  const auto [acc, report] = runner.run();
  EXPECT_TRUE(report.truncated);
  EXPECT_FALSE(report.complete());
  EXPECT_GE(report.units_done, 32u);
  EXPECT_LT(report.units_done, 64u);
  EXPECT_EQ(acc.counter("units"), report.units_done);
}

TEST(Campaign, StopTokenTruncates) {
  StopSource source;
  source.request_stop();
  CampaignConfig cfg;
  cfg.total_units = 64;
  cfg.seed = 5;
  cfg.shards = 2;
  cfg.stop = source.token();
  auto factory = [](std::uint32_t, Rng&) -> CampaignRunner::UnitRunner {
    return [](CampaignAccumulator& acc) { ++acc.counter("units"); };
  };
  CampaignRunner runner(cfg, factory);
  const auto [acc, report] = runner.run();
  EXPECT_TRUE(report.truncated);
  EXPECT_EQ(report.units_done, 0u);
}

TEST(Campaign, FailingShardIsRetriedOnFreshSubstream) {
  // Shard 1's first attempt dies mid-stream; the retry must succeed and the
  // campaign must report the extra attempt without quarantining.
  auto first_attempt_poisoned = std::make_shared<std::atomic<bool>>(true);
  auto factory = [first_attempt_poisoned](std::uint32_t shard,
                                          Rng&) -> CampaignRunner::UnitRunner {
    const bool poison = shard == 1 && first_attempt_poisoned->exchange(false);
    auto count = std::make_shared<std::uint64_t>(0);
    return [poison, count](CampaignAccumulator& acc) {
      if (poison && ++*count == 3) throw std::runtime_error("disk on fire");
      ++acc.counter("units");
    };
  };
  CampaignConfig cfg;
  cfg.total_units = 40;
  cfg.seed = 9;
  cfg.shards = 4;
  cfg.checkpoint_every = 2;
  cfg.max_attempts = 3;
  cfg.retry_backoff_ms = 0.0;
  CampaignRunner runner(cfg, factory);
  const auto [acc, report] = runner.run();
  EXPECT_TRUE(report.complete());
  EXPECT_EQ(acc.counter("units"), 40u);
  EXPECT_EQ(report.quarantined(), 0u);
  EXPECT_EQ(report.shards[1].attempts, 2u);
  EXPECT_EQ(report.shards[1].error, "disk on fire");
  EXPECT_EQ(report.shards[0].attempts, 1u);
}

TEST(Campaign, PersistentlyFailingShardIsQuarantined) {
  auto factory = [](std::uint32_t shard, Rng&) -> CampaignRunner::UnitRunner {
    return [shard](CampaignAccumulator& acc) {
      if (shard == 2) throw std::runtime_error("cursed shard");
      ++acc.counter("units");
    };
  };
  CampaignConfig cfg;
  cfg.total_units = 40;
  cfg.seed = 9;
  cfg.shards = 4;
  cfg.max_attempts = 2;
  cfg.retry_backoff_ms = 0.0;
  CampaignRunner runner(cfg, factory);
  const auto [acc, report] = runner.run();
  EXPECT_EQ(report.quarantined(), 1u);
  EXPECT_TRUE(report.shards[2].quarantined);
  EXPECT_EQ(report.shards[2].attempts, 2u);
  EXPECT_EQ(report.shards[2].error, "cursed shard");
  EXPECT_EQ(report.shards[2].done, 0u);
  // The other three shards completed and their units survived the merge.
  EXPECT_EQ(acc.counter("units"), 30u);
  EXPECT_FALSE(report.complete());
}

TEST(Campaign, AdaptiveStoppingConvergesEarly) {
  auto factory = [](std::uint32_t, Rng& rng) -> CampaignRunner::UnitRunner {
    return [&rng](CampaignAccumulator& acc) {
      ++acc.counter("trials");
      if (rng.uniform() < 0.5) ++acc.counter("successes");
    };
  };
  auto rse = [](const CampaignAccumulator& merged) {
    return bernoulli_rse(merged.counter("successes"), merged.counter("trials"));
  };
  CampaignConfig cfg;
  cfg.total_units = 1'000'000;
  cfg.seed = 13;
  cfg.shards = 4;
  cfg.checkpoint_every = 64;
  cfg.target_rse = 0.05;  // ~200 successes, ~400 trials: far below a million
  CampaignRunner runner(cfg, factory, rse);
  const auto [acc, report] = runner.run();
  EXPECT_TRUE(report.converged);
  EXPECT_FALSE(report.truncated);
  EXPECT_FALSE(report.complete());
  EXPECT_LT(report.units_done, 100'000u);
  EXPECT_GT(report.units_done, 0u);
  EXPECT_LE(report.achieved_rse, cfg.target_rse);
}

TEST(Campaign, ResumeRefusesMismatchedWorkload) {
  const auto path = temp_path("journal_mismatch.bin");
  std::remove(path.c_str());
  auto factory = [](std::uint32_t, Rng&) -> CampaignRunner::UnitRunner {
    return [](CampaignAccumulator& acc) { ++acc.counter("units"); };
  };
  CampaignConfig cfg;
  cfg.total_units = 16;
  cfg.seed = 3;
  cfg.shards = 2;
  cfg.checkpoint_path = path;
  cfg.fingerprint = "workload-A";
  CampaignRunner(cfg, factory).run();

  cfg.resume = true;
  cfg.fingerprint = "workload-B";
  CampaignRunner resumed(cfg, factory);
  EXPECT_THROW(resumed.run(), PreconditionError);
  std::remove(path.c_str());
}

TEST(FleetCampaign, MatchesAdapterRoundTrip) {
  FleetSimResult r;
  r.missions = 10;
  r.data_loss_missions = 2;
  r.disk_failures = 123;
  r.cross_rack_tb = 4.5;
  r.loss_time_hours.add(100.0);
  CampaignAccumulator acc;
  accumulate_fleet_result(r, acc);
  expect_identical(fleet_result_from(acc), r);
}

TEST(FleetCampaign, KillAndResumeIsBitIdenticalToUninterruptedRun) {
  const auto path = temp_path("fleet_resume.bin");
  std::remove(path.c_str());
  const auto cfg = small_fleet();
  const std::uint64_t missions = 64;
  const std::uint64_t seed = 2023;

  FleetCampaignOptions uninterrupted;
  uninterrupted.shards = 4;
  uninterrupted.checkpoint_every = 4;
  const auto full = run_fleet_campaign(cfg, missions, seed, uninterrupted);
  EXPECT_TRUE(full.report.complete());
  EXPECT_FALSE(full.result.truncated);
  EXPECT_GT(full.result.disk_failures, 0u);

  // "Kill" the campaign halfway through via a deterministic unit budget...
  FleetCampaignOptions first_half = uninterrupted;
  first_half.checkpoint_path = path;
  first_half.unit_budget = missions / 2;
  const auto partial = run_fleet_campaign(cfg, missions, seed, first_half);
  EXPECT_TRUE(partial.report.truncated);
  EXPECT_TRUE(partial.result.truncated);
  EXPECT_FALSE(partial.report.complete());
  EXPECT_GE(partial.report.units_done, missions / 2);
  EXPECT_LT(partial.report.units_done, missions);

  // ...then resume from the journal and finish.
  FleetCampaignOptions second_half = uninterrupted;
  second_half.checkpoint_path = path;
  second_half.resume = true;
  const auto resumed = run_fleet_campaign(cfg, missions, seed, second_half);
  EXPECT_TRUE(resumed.report.resumed);
  EXPECT_TRUE(resumed.report.complete());
  EXPECT_FALSE(resumed.result.truncated);

  expect_identical(resumed.result, full.result);
  std::remove(path.c_str());
}

TEST(FleetCampaign, AdaptiveStoppingOnPdl) {
  auto cfg = small_fleet();
  cfg.failures.afr = 2.0;  // lossy enough that the PDL estimate converges fast
  FleetCampaignOptions options;
  options.shards = 2;
  options.checkpoint_every = 8;
  options.target_rse = 0.5;
  const auto out = run_fleet_campaign(cfg, 100'000, 77, options);
  EXPECT_TRUE(out.report.converged);
  EXPECT_FALSE(out.report.truncated);
  EXPECT_FALSE(out.result.truncated);
  EXPECT_LT(out.report.units_done, 100'000u);
  EXPECT_GT(out.result.data_loss_missions, 0u);
}

TEST(FleetCampaign, FingerprintTracksPhysicsChanges) {
  const auto base = small_fleet();
  auto changed = base;
  changed.failures.afr = 0.51;
  EXPECT_NE(fleet_campaign_fingerprint(base), fleet_campaign_fingerprint(changed));
  EXPECT_EQ(fleet_campaign_fingerprint(base), fleet_campaign_fingerprint(small_fleet()));
}

}  // namespace
}  // namespace mlec
