#include "runtime/campaign.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#ifndef _WIN32
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "runtime/fleet_campaign.hpp"
#include "runtime/journal.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace mlec {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

/// 6 racks x 2 enclosures x 8 disks, hot enough that 64 one-year missions
/// see failures, catastrophes, and the occasional loss. Rack and enclosure
/// counts respect the (2+1)/(3+1) clustered-placement divisibility rules.
FleetSimConfig small_fleet() {
  FleetSimConfig cfg;
  cfg.dc.racks = 6;
  cfg.dc.enclosures_per_rack = 2;
  cfg.dc.disks_per_enclosure = 8;
  cfg.dc.disk_capacity_tb = 20.0;
  cfg.code = {{2, 1}, {3, 1}};
  cfg.failures.afr = 0.5;
  return cfg;
}

void expect_identical(const FleetSimResult& a, const FleetSimResult& b) {
  EXPECT_EQ(a.missions, b.missions);
  EXPECT_EQ(a.data_loss_missions, b.data_loss_missions);
  EXPECT_EQ(a.data_loss_events, b.data_loss_events);
  EXPECT_EQ(a.disk_failures, b.disk_failures);
  EXPECT_EQ(a.catastrophic_pool_events, b.catastrophic_pool_events);
  EXPECT_EQ(a.cross_rack_tb, b.cross_rack_tb);  // bit-exact, not approximate
  EXPECT_TRUE(a.loss_time_hours == b.loss_time_hours);
  EXPECT_TRUE(a.catastrophe_exposure_hours == b.catastrophe_exposure_hours);
}

TEST(CampaignAccumulator, RoundTripsThroughStream) {
  CampaignAccumulator acc;
  acc.counter("events") = 42;
  acc.scalar("tb") = 3.25;
  acc.stats("latency").add(1.0);
  acc.stats("latency").add(2.5);
  std::stringstream ss;
  acc.save(ss);
  const auto back = CampaignAccumulator::load(ss);
  EXPECT_TRUE(acc == back);
  EXPECT_EQ(back.counter("events"), 42u);
  EXPECT_EQ(back.scalar("tb"), 3.25);
  EXPECT_EQ(back.stats("latency").count(), 2u);
}

TEST(CampaignAccumulator, ConstLookupOfMissingSlotIsZero) {
  const CampaignAccumulator acc;
  EXPECT_EQ(acc.counter("nope"), 0u);
  EXPECT_EQ(acc.scalar("nope"), 0.0);
  EXPECT_EQ(acc.stats("nope").count(), 0u);
}

TEST(CampaignAccumulator, MergeRejectsMismatchedLayout) {
  CampaignAccumulator a;
  a.counter("x") = 1;
  CampaignAccumulator b;
  b.counter("y") = 2;
  EXPECT_THROW(a.merge(b), PreconditionError);
}

TEST(CampaignJournal, RoundTripsThroughFile) {
  CampaignJournal journal;
  journal.seed = 7;
  journal.total_units = 100;
  journal.shards = 1;
  journal.fingerprint = fingerprint_of("workload-v1");
  ShardRecord rec;
  rec.shard = 0;  // v2 validates shard ids against the header's shard count
  rec.attempt = 2;
  rec.assigned = 50;
  rec.done = 30;
  rec.rng_state = {1, 2, 3, 4};
  rec.acc.counter("missions") = 30;
  journal.records.push_back(rec);

  const auto path = temp_path("journal_roundtrip.bin");
  journal.save_file(path);
  const auto back = CampaignJournal::load_file(path);
  EXPECT_EQ(back.seed, 7u);
  EXPECT_EQ(back.total_units, 100u);
  EXPECT_EQ(back.shards, 1u);
  EXPECT_EQ(back.fingerprint, journal.fingerprint);
  ASSERT_EQ(back.records.size(), 1u);
  EXPECT_EQ(back.records[0].shard, 0u);
  EXPECT_EQ(back.records[0].rng_state, (std::array<std::uint64_t, 4>{1, 2, 3, 4}));
  EXPECT_TRUE(back.records[0].acc == rec.acc);
  std::remove(path.c_str());
}

TEST(CampaignJournal, RejectsGarbage) {
  const auto path = temp_path("journal_garbage.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a journal at all";
  }
  EXPECT_THROW(CampaignJournal::load_file(path), PreconditionError);
  std::remove(path.c_str());
}

/// A journal with two shard records, written through the real save path so
/// the damage tests below operate on genuine v2 framing.
std::string write_sample_journal(const std::string& name) {
  CampaignJournal journal;
  journal.seed = 21;
  journal.total_units = 64;
  journal.shards = 2;
  journal.fingerprint = fingerprint_of("damage-tests");
  for (std::uint32_t shard = 0; shard < 2; ++shard) {
    ShardRecord rec;
    rec.shard = shard;
    rec.attempt = 1;
    rec.assigned = 32;
    rec.done = 16;
    rec.rng_state = {shard + 1ull, 2, 3, 4};
    rec.acc.counter("missions") = 16;
    journal.records.push_back(rec);
  }
  const auto path = temp_path(name);
  journal.save_file(path);
  return path;
}

TEST(CampaignJournal, RecoverOnIntactFileIsOk) {
  const auto path = write_sample_journal("journal_intact.bin");
  const auto result = CampaignJournal::recover_file(path);
  EXPECT_EQ(result.status, JournalLoadResult::Status::kOk);
  EXPECT_TRUE(result.usable());
  EXPECT_TRUE(result.warning.empty());
  EXPECT_EQ(result.records.size(), 2u);
  EXPECT_EQ(result.records_dropped, 0u);
  std::remove(path.c_str());
}

TEST(CampaignJournal, RecoverTruncatedTailKeepsTheValidPrefix) {
  const auto path = write_sample_journal("journal_truncated.bin");
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 7);  // tear the last record
  const auto result = CampaignJournal::recover_file(path);
  EXPECT_EQ(result.status, JournalLoadResult::Status::kRecovered);
  EXPECT_TRUE(result.usable());
  EXPECT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0].shard, 0u);
  EXPECT_EQ(result.records_dropped, 1u);
  EXPECT_NE(result.warning.find("dropped"), std::string::npos);
  // The strict path must keep refusing the same bytes.
  EXPECT_THROW(CampaignJournal::load_file(path), PreconditionError);
  std::remove(path.c_str());
}

TEST(CampaignJournal, RecoverBitFlipDropsTheDamagedRecord) {
  const auto path = write_sample_journal("journal_flipped.bin");
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(0, std::ios::end);
    const auto size = static_cast<std::streamoff>(f.tellg());
    f.seekp(size - 10);  // inside the last record's payload
    char b = 0;
    f.seekg(size - 10);
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x40);
    f.seekp(size - 10);
    f.write(&b, 1);
  }
  const auto result = CampaignJournal::recover_file(path);
  EXPECT_EQ(result.status, JournalLoadResult::Status::kRecovered);
  EXPECT_EQ(result.records.size(), 1u);
  EXPECT_THROW(CampaignJournal::load_file(path), PreconditionError);
  std::remove(path.c_str());
}

TEST(CampaignJournal, RecoverBadMagicIsUnusable) {
  const auto path = write_sample_journal("journal_bad_magic.bin");
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.write("XXXX", 4);
  }
  const auto result = CampaignJournal::recover_file(path);
  EXPECT_EQ(result.status, JournalLoadResult::Status::kUnusable);
  EXPECT_FALSE(result.usable());
  EXPECT_FALSE(result.warning.empty());
  std::remove(path.c_str());
}

TEST(CampaignJournal, RecoverV1JournalReportsMigration) {
  const auto path = temp_path("journal_v1.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out.write("MLECCAMP", 8);
    const std::uint32_t v1 = 1;
    out.write(reinterpret_cast<const char*>(&v1), 4);
    const std::string stale(40, '\0');
    out.write(stale.data(), static_cast<std::streamsize>(stale.size()));
  }
  const auto result = CampaignJournal::recover_file(path);
  EXPECT_EQ(result.status, JournalLoadResult::Status::kUnusable);
  EXPECT_NE(result.warning.find("v1"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CampaignJournal, RecoverMissingFile) {
  const auto result = CampaignJournal::recover_file(temp_path("journal_never_written.bin"));
  EXPECT_EQ(result.status, JournalLoadResult::Status::kMissing);
  EXPECT_FALSE(result.usable());
}

TEST(Campaign, RunsToCompletionWithoutCheckpointing) {
  CampaignConfig cfg;
  cfg.total_units = 100;
  cfg.seed = 11;
  cfg.shards = 4;
  cfg.checkpoint_every = 8;
  auto factory = [](std::uint32_t, Rng& rng) -> CampaignRunner::UnitRunner {
    return [&rng](CampaignAccumulator& acc) {
      ++acc.counter("units");
      if (rng.uniform() < 0.25) ++acc.counter("hits");
    };
  };
  CampaignRunner runner(cfg, factory);
  const auto [acc, report] = runner.run();
  EXPECT_EQ(acc.counter("units"), 100u);
  EXPECT_TRUE(report.complete());
  EXPECT_FALSE(report.truncated);
  EXPECT_FALSE(report.converged);
  EXPECT_FALSE(report.resumed);
  EXPECT_EQ(report.quarantined(), 0u);
  ASSERT_EQ(report.shards.size(), 4u);
  for (const auto& s : report.shards) {
    EXPECT_EQ(s.attempts, 1u);
    EXPECT_EQ(s.done, s.assigned);
  }
}

TEST(Campaign, UnitBudgetTruncatesAtBatchBoundaries) {
  CampaignConfig cfg;
  cfg.total_units = 64;
  cfg.seed = 5;
  cfg.shards = 4;
  cfg.checkpoint_every = 4;
  cfg.unit_budget = 32;
  auto factory = [](std::uint32_t, Rng&) -> CampaignRunner::UnitRunner {
    return [](CampaignAccumulator& acc) { ++acc.counter("units"); };
  };
  CampaignRunner runner(cfg, factory);
  const auto [acc, report] = runner.run();
  EXPECT_TRUE(report.truncated);
  EXPECT_FALSE(report.complete());
  EXPECT_GE(report.units_done, 32u);
  EXPECT_LT(report.units_done, 64u);
  EXPECT_EQ(acc.counter("units"), report.units_done);
}

TEST(Campaign, StopTokenTruncates) {
  StopSource source;
  source.request_stop();
  CampaignConfig cfg;
  cfg.total_units = 64;
  cfg.seed = 5;
  cfg.shards = 2;
  cfg.stop = source.token();
  auto factory = [](std::uint32_t, Rng&) -> CampaignRunner::UnitRunner {
    return [](CampaignAccumulator& acc) { ++acc.counter("units"); };
  };
  CampaignRunner runner(cfg, factory);
  const auto [acc, report] = runner.run();
  EXPECT_TRUE(report.truncated);
  EXPECT_EQ(report.units_done, 0u);
}

TEST(Campaign, FailingShardIsRetriedOnFreshSubstream) {
  // Shard 1's first attempt dies mid-stream; the retry must succeed and the
  // campaign must report the extra attempt without quarantining.
  auto first_attempt_poisoned = std::make_shared<std::atomic<bool>>(true);
  auto factory = [first_attempt_poisoned](std::uint32_t shard,
                                          Rng&) -> CampaignRunner::UnitRunner {
    const bool poison = shard == 1 && first_attempt_poisoned->exchange(false);
    auto count = std::make_shared<std::uint64_t>(0);
    return [poison, count](CampaignAccumulator& acc) {
      if (poison && ++*count == 3) throw std::runtime_error("disk on fire");
      ++acc.counter("units");
    };
  };
  CampaignConfig cfg;
  cfg.total_units = 40;
  cfg.seed = 9;
  cfg.shards = 4;
  cfg.checkpoint_every = 2;
  cfg.max_attempts = 3;
  cfg.retry_backoff_ms = 0.0;
  CampaignRunner runner(cfg, factory);
  const auto [acc, report] = runner.run();
  EXPECT_TRUE(report.complete());
  EXPECT_EQ(acc.counter("units"), 40u);
  EXPECT_EQ(report.quarantined(), 0u);
  EXPECT_EQ(report.shards[1].attempts, 2u);
  EXPECT_EQ(report.shards[1].error, "disk on fire");
  EXPECT_EQ(report.shards[0].attempts, 1u);
}

TEST(Campaign, PersistentlyFailingShardIsQuarantined) {
  auto factory = [](std::uint32_t shard, Rng&) -> CampaignRunner::UnitRunner {
    return [shard](CampaignAccumulator& acc) {
      if (shard == 2) throw std::runtime_error("cursed shard");
      ++acc.counter("units");
    };
  };
  CampaignConfig cfg;
  cfg.total_units = 40;
  cfg.seed = 9;
  cfg.shards = 4;
  cfg.max_attempts = 2;
  cfg.retry_backoff_ms = 0.0;
  CampaignRunner runner(cfg, factory);
  const auto [acc, report] = runner.run();
  EXPECT_EQ(report.quarantined(), 1u);
  EXPECT_TRUE(report.shards[2].quarantined);
  EXPECT_EQ(report.shards[2].attempts, 2u);
  EXPECT_EQ(report.shards[2].error, "cursed shard");
  EXPECT_EQ(report.shards[2].done, 0u);
  // The other three shards completed and their units survived the merge.
  EXPECT_EQ(acc.counter("units"), 30u);
  EXPECT_FALSE(report.complete());
}

TEST(Campaign, WatchdogTimesOutHungShardAndRetrySucceeds) {
  // Shard 0's first attempt stalls ~80 ms per unit against a 40 ms watchdog
  // deadline; the watchdog flags the attempt, the shard raises a timeout at
  // the next batch boundary, and the retry (which does not stall) finishes
  // the campaign cleanly.
  auto first_attempt_stalls = std::make_shared<std::atomic<bool>>(true);
  auto factory = [first_attempt_stalls](std::uint32_t shard,
                                        Rng&) -> CampaignRunner::UnitRunner {
    const bool stall = shard == 0 && first_attempt_stalls->exchange(false);
    return [stall](CampaignAccumulator& acc) {
      if (stall) std::this_thread::sleep_for(std::chrono::milliseconds(80));
      ++acc.counter("units");
    };
  };
  CampaignConfig cfg;
  cfg.total_units = 16;
  cfg.seed = 17;
  cfg.shards = 2;
  cfg.checkpoint_every = 2;
  cfg.shard_timeout_s = 0.04;
  cfg.max_attempts = 3;
  cfg.retry_backoff_ms = 0.0;
  CampaignRunner runner(cfg, factory);
  const auto [acc, report] = runner.run();
  EXPECT_TRUE(report.complete());
  EXPECT_EQ(acc.counter("units"), 16u);
  EXPECT_EQ(report.quarantined(), 0u);
  EXPECT_GE(report.shards[0].attempts, 2u);
  EXPECT_GE(report.shards[0].timeouts, 1u);
  EXPECT_EQ(report.shards[1].timeouts, 0u);
}

TEST(Campaign, ResumeFromDamagedJournalStartsFreshWithWarning) {
  // A resume pointed at an unusable journal must not abort: it starts fresh
  // and surfaces the damage in the report.
  const auto path = temp_path("journal_unusable_resume.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "definitely not a journal";
  }
  auto factory = [](std::uint32_t, Rng&) -> CampaignRunner::UnitRunner {
    return [](CampaignAccumulator& acc) { ++acc.counter("units"); };
  };
  CampaignConfig cfg;
  cfg.total_units = 16;
  cfg.seed = 3;
  cfg.shards = 2;
  cfg.checkpoint_path = path;
  cfg.resume = true;
  CampaignRunner runner(cfg, factory);
  const auto [acc, report] = runner.run();
  EXPECT_TRUE(report.complete());
  EXPECT_EQ(acc.counter("units"), 16u);
  EXPECT_FALSE(report.resumed);
  EXPECT_NE(report.resume_warning.find("starting fresh"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Campaign, AdaptiveStoppingConvergesEarly) {
  auto factory = [](std::uint32_t, Rng& rng) -> CampaignRunner::UnitRunner {
    return [&rng](CampaignAccumulator& acc) {
      ++acc.counter("trials");
      if (rng.uniform() < 0.5) ++acc.counter("successes");
    };
  };
  auto rse = [](const CampaignAccumulator& merged) {
    return bernoulli_rse(merged.counter("successes"), merged.counter("trials"));
  };
  CampaignConfig cfg;
  cfg.total_units = 1'000'000;
  cfg.seed = 13;
  cfg.shards = 4;
  cfg.checkpoint_every = 64;
  cfg.target_rse = 0.05;  // ~200 successes, ~400 trials: far below a million
  CampaignRunner runner(cfg, factory, rse);
  const auto [acc, report] = runner.run();
  EXPECT_TRUE(report.converged);
  EXPECT_FALSE(report.truncated);
  EXPECT_FALSE(report.complete());
  EXPECT_LT(report.units_done, 100'000u);
  EXPECT_GT(report.units_done, 0u);
  EXPECT_LE(report.achieved_rse, cfg.target_rse);
}

TEST(Campaign, ResumeRefusesMismatchedWorkload) {
  const auto path = temp_path("journal_mismatch.bin");
  std::remove(path.c_str());
  auto factory = [](std::uint32_t, Rng&) -> CampaignRunner::UnitRunner {
    return [](CampaignAccumulator& acc) { ++acc.counter("units"); };
  };
  CampaignConfig cfg;
  cfg.total_units = 16;
  cfg.seed = 3;
  cfg.shards = 2;
  cfg.checkpoint_path = path;
  cfg.fingerprint = "workload-A";
  CampaignRunner(cfg, factory).run();

  cfg.resume = true;
  cfg.fingerprint = "workload-B";
  CampaignRunner resumed(cfg, factory);
  EXPECT_THROW(resumed.run(), PreconditionError);
  std::remove(path.c_str());
}

TEST(FleetCampaign, MatchesAdapterRoundTrip) {
  FleetSimResult r;
  r.missions = 10;
  r.data_loss_missions = 2;
  r.disk_failures = 123;
  r.cross_rack_tb = 4.5;
  r.loss_time_hours.add(100.0);
  CampaignAccumulator acc;
  accumulate_fleet_result(r, acc);
  expect_identical(fleet_result_from(acc), r);
}

TEST(FleetCampaign, KillAndResumeIsBitIdenticalToUninterruptedRun) {
  const auto path = temp_path("fleet_resume.bin");
  std::remove(path.c_str());
  const auto cfg = small_fleet();
  const std::uint64_t missions = 64;
  const std::uint64_t seed = 2023;

  FleetCampaignOptions uninterrupted;
  uninterrupted.shards = 4;
  uninterrupted.checkpoint_every = 4;
  const auto full = run_fleet_campaign(cfg, missions, seed, uninterrupted);
  EXPECT_TRUE(full.report.complete());
  EXPECT_FALSE(full.result.truncated);
  EXPECT_GT(full.result.disk_failures, 0u);

  // "Kill" the campaign halfway through via a deterministic unit budget...
  FleetCampaignOptions first_half = uninterrupted;
  first_half.checkpoint_path = path;
  first_half.unit_budget = missions / 2;
  const auto partial = run_fleet_campaign(cfg, missions, seed, first_half);
  EXPECT_TRUE(partial.report.truncated);
  EXPECT_TRUE(partial.result.truncated);
  EXPECT_FALSE(partial.report.complete());
  EXPECT_GE(partial.report.units_done, missions / 2);
  EXPECT_LT(partial.report.units_done, missions);

  // ...then resume from the journal and finish.
  FleetCampaignOptions second_half = uninterrupted;
  second_half.checkpoint_path = path;
  second_half.resume = true;
  const auto resumed = run_fleet_campaign(cfg, missions, seed, second_half);
  EXPECT_TRUE(resumed.report.resumed);
  EXPECT_TRUE(resumed.report.complete());
  EXPECT_FALSE(resumed.result.truncated);

  expect_identical(resumed.result, full.result);
  std::remove(path.c_str());
}

#ifndef _WIN32
TEST(FleetCampaign, CrashAtEveryCheckpointBoundaryResumesBitIdentical) {
  // The crash-recovery acceptance sweep: kill the campaign (std::_Exit, no
  // flushing — a simulated power cut) at EVERY checkpoint boundary in turn,
  // resume from whatever journal survived, and require the final result
  // bit-identical to an uninterrupted run. Forked children never touch the
  // thread pool (single-threaded campaigns), so fork stays safe.
  const auto cfg = small_fleet();
  const std::uint64_t missions = 32;
  const std::uint64_t seed = 404;

  FleetCampaignOptions options;
  options.shards = 2;
  options.checkpoint_every = 4;
  const auto full = run_fleet_campaign(cfg, missions, seed, options);
  ASSERT_TRUE(full.report.complete());

  int boundaries_hit = 0;
  for (int hit = 1; hit <= 64; ++hit) {
    const auto path =
        temp_path("fleet_crash_at_" + std::to_string(hit) + ".bin");
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());

    const pid_t pid = fork();
    ASSERT_GE(pid, 0) << "fork failed";
    if (pid == 0) {
      // Child: crash on the hit-th completed checkpoint. _Exit codes: 42 is
      // the injected crash, 64 means the run outlived the schedule (no more
      // boundaries to kill), anything else is a real failure.
      fault::configure("campaign.checkpoint.post=crash@hit=" + std::to_string(hit));
      FleetCampaignOptions child = options;
      child.checkpoint_path = path;
      try {
        (void)run_fleet_campaign(cfg, missions, seed, child);
        std::_Exit(64);
      } catch (...) {
        std::_Exit(65);
      }
    }
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    const int code = WEXITSTATUS(status);
    if (code == 64) break;  // past the last checkpoint: sweep complete
    ASSERT_EQ(code, 42) << "child failed for a reason other than the injected crash";
    ++boundaries_hit;

    FleetCampaignOptions resume = options;
    resume.checkpoint_path = path;
    resume.resume = true;
    const auto resumed = run_fleet_campaign(cfg, missions, seed, resume);
    EXPECT_TRUE(resumed.report.complete()) << "crash at checkpoint " << hit;
    expect_identical(resumed.result, full.result);
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
  }
  // The sweep must have actually exercised crash points (32 missions / 2
  // shards / every 4 units -> several checkpoints plus the final saves).
  EXPECT_GE(boundaries_hit, 4);
}
#endif  // !_WIN32

TEST(FleetCampaign, AdaptiveStoppingOnPdl) {
  auto cfg = small_fleet();
  cfg.failures.afr = 2.0;  // lossy enough that the PDL estimate converges fast
  FleetCampaignOptions options;
  options.shards = 2;
  options.checkpoint_every = 8;
  options.target_rse = 0.5;
  const auto out = run_fleet_campaign(cfg, 100'000, 77, options);
  EXPECT_TRUE(out.report.converged);
  EXPECT_FALSE(out.report.truncated);
  EXPECT_FALSE(out.result.truncated);
  EXPECT_LT(out.report.units_done, 100'000u);
  EXPECT_GT(out.result.data_loss_missions, 0u);
}

TEST(FleetCampaign, FingerprintTracksPhysicsChanges) {
  const auto base = small_fleet();
  auto changed = base;
  changed.failures.afr = 0.51;
  EXPECT_NE(fleet_campaign_fingerprint(base), fleet_campaign_fingerprint(changed));
  EXPECT_EQ(fleet_campaign_fingerprint(base), fleet_campaign_fingerprint(small_fleet()));
}

}  // namespace
}  // namespace mlec
