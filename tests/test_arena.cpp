#include "util/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

namespace mlec {
namespace {

struct Slot {
  std::vector<int> payload;
  int resets = 0;
};

TEST(TrialArena, StartsInactive) {
  TrialArena<Slot> arena;
  arena.resize(16);
  EXPECT_EQ(arena.universe(), 16u);
  EXPECT_EQ(arena.active_count(), 0u);
  for (std::uint32_t id = 0; id < 16; ++id) {
    EXPECT_FALSE(arena.active(id));
    EXPECT_EQ(arena.find(id), nullptr);
  }
}

TEST(TrialArena, ActivateResetsOnceAndFindsAfterwards) {
  TrialArena<Slot> arena;
  arena.resize(4);
  auto reset = [](Slot& s) {
    s.payload.clear();
    ++s.resets;
  };
  Slot& a = arena.activate(2, reset);
  EXPECT_EQ(a.resets, 1);
  a.payload.push_back(7);

  // A second activate of the same id must return the same live slot
  // without resetting it.
  Slot& again = arena.activate(2, reset);
  EXPECT_EQ(&again, &a);
  EXPECT_EQ(again.resets, 1);
  EXPECT_EQ(again.payload, (std::vector<int>{7}));

  ASSERT_NE(arena.find(2), nullptr);
  EXPECT_EQ(arena.find(2), &a);
  EXPECT_TRUE(arena.active(2));
  EXPECT_EQ(arena.active_count(), 1u);
}

TEST(TrialArena, DeactivateRemovesFromActiveSet) {
  TrialArena<Slot> arena;
  arena.resize(8);
  auto reset = [](Slot& s) { s.payload.clear(); };
  arena.activate(1, reset);
  arena.activate(5, reset);
  arena.activate(3, reset);
  arena.deactivate(5);
  EXPECT_FALSE(arena.active(5));
  EXPECT_EQ(arena.find(5), nullptr);
  EXPECT_EQ(arena.active_count(), 2u);
  // Swap-remove must keep the other ids intact.
  std::set<std::uint32_t> active(arena.active_ids().begin(), arena.active_ids().end());
  EXPECT_EQ(active, (std::set<std::uint32_t>{1, 3}));
  arena.deactivate(5);  // double deactivate is a no-op
  EXPECT_EQ(arena.active_count(), 2u);
}

TEST(TrialArena, BeginTrialDeactivatesEveryoneButRecyclesSlots) {
  TrialArena<Slot> arena;
  arena.resize(8);
  auto reset = [](Slot& s) {
    s.payload.clear();
    ++s.resets;
  };
  Slot& a = arena.activate(6, reset);
  a.payload.assign(100, 42);  // grow the slot's heap capacity
  const std::size_t capacity = a.payload.capacity();

  arena.begin_trial();
  EXPECT_EQ(arena.active_count(), 0u);
  EXPECT_FALSE(arena.active(6));

  // Re-activation resets the value (second reset) into the SAME slot, so
  // the vector capacity survives — the zero-allocation recycling invariant.
  Slot& b = arena.activate(6, reset);
  EXPECT_EQ(&b, &a);
  EXPECT_EQ(b.resets, 2);
  EXPECT_TRUE(b.payload.empty());
  EXPECT_GE(b.payload.capacity(), capacity);
}

TEST(TrialArena, AllocationsCountOnlyGrowth) {
  TrialArena<Slot> arena;
  EXPECT_EQ(arena.allocations(), 0u);
  arena.resize(8);
  EXPECT_EQ(arena.allocations(), 1u);
  arena.resize(8);  // same size: no growth
  EXPECT_EQ(arena.allocations(), 1u);
  arena.resize(4);  // shrink keeps storage
  EXPECT_EQ(arena.allocations(), 1u);
  arena.resize(32);
  EXPECT_EQ(arena.allocations(), 2u);

  // Steady-state trial loop: no further growth regardless of activity.
  auto reset = [](Slot& s) { s.payload.clear(); };
  for (int trial = 0; trial < 100; ++trial) {
    arena.begin_trial();
    for (std::uint32_t id = 0; id < 32; id += 3) arena.activate(id, reset);
    arena.deactivate(3);
  }
  EXPECT_EQ(arena.allocations(), 2u);
}

TEST(TrialArena, ActiveIdsTracksMembershipThroughChurn) {
  TrialArena<int> arena;
  arena.resize(64);
  std::set<std::uint32_t> model;
  auto reset = [](int& v) { v = 0; };
  std::uint64_t x = 88172645463325252ULL;  // xorshift, deterministic churn
  auto next = [&x]() {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };
  for (int step = 0; step < 10000; ++step) {
    const auto id = static_cast<std::uint32_t>(next() % 64);
    if (next() % 3 == 0) {
      arena.deactivate(id);
      model.erase(id);
    } else {
      arena.activate(id, reset);
      model.insert(id);
    }
    if (step % 997 == 0) {
      arena.begin_trial();
      model.clear();
    }
    ASSERT_EQ(arena.active_count(), model.size());
  }
  const std::set<std::uint32_t> active(arena.active_ids().begin(), arena.active_ids().end());
  EXPECT_EQ(active, model);
}

}  // namespace
}  // namespace mlec
