// Decode-path property tests for the SIMD data plane: ec::DecodePlan
// construction/validation, scalar-vs-SIMD decode differentials over random
// erasure patterns for every code family (rs, rs_wide, lrc), the parallel
// streaming decode, and the per-pattern plan caches on the codes.
#include "ec/decode.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <span>
#include <vector>

#include "ec/backend.hpp"
#include "ec/stream.hpp"
#include "gf/code_model.hpp"
#include "gf/gf256.hpp"
#include "gf/rs.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace mlec::ec {
namespace {

using gf::byte_t;

std::vector<Backend> all_backends() {
  std::vector<Backend> out;
  for (int i = 0; i < kBackendCount; ++i) out.push_back(static_cast<Backend>(i));
  return out;
}

std::vector<byte_t> random_buffer(std::size_t len, Rng& rng) {
  std::vector<byte_t> buf(len);
  for (auto& b : buf) b = static_cast<byte_t>(rng.uniform_below(256));
  return buf;
}

/// Encode a full stripe for `model` from random data of length `len`.
std::vector<std::vector<byte_t>> random_stripe(const CodeModel& model, std::size_t len,
                                               Rng& rng) {
  std::vector<std::vector<byte_t>> shards;
  for (std::size_t i = 0; i < model.data_chunks(); ++i) shards.push_back(random_buffer(len, rng));
  std::vector<std::span<const byte_t>> data(shards.begin(), shards.end());
  shards.resize(model.width(), std::vector<byte_t>(len, 0));
  std::vector<std::span<byte_t>> parity(shards.begin() + model.data_chunks(), shards.end());
  model.encode(std::span<const std::span<const byte_t>>(data),
               std::span<const std::span<byte_t>>(parity));
  return shards;
}

/// A random decodable erasure pattern of `losses` shards (retries until the
/// model accepts it; every model here tolerates at least one loss).
std::vector<std::size_t> random_decodable_pattern(const CodeModel& model, std::size_t losses,
                                                  Rng& rng) {
  for (int attempt = 0; attempt < 1000; ++attempt) {
    const auto sampled = rng.sample_without_replacement(model.width(), losses);
    std::vector<std::size_t> lost(sampled.begin(), sampled.end());
    if (model.can_repair(lost)) return lost;
  }
  return {};  // caller treats empty as "no decodable pattern of this size"
}

TEST(EcDecodePlan, ValidatesInputs) {
  // 3+2 toy systematic generator: identity + two distinct parity rows.
  const std::vector<byte_t> gen{1, 0, 0, 0, 1, 0, 0, 0, 1, 1, 1, 1, 1, 2, 3};
  const std::vector<std::size_t> one{0};
  EXPECT_NO_THROW(DecodePlan(5, 3, gen, one));
  const std::vector<std::size_t> oob{5};
  EXPECT_THROW(DecodePlan(5, 3, gen, oob), PreconditionError);
  const std::vector<std::size_t> dup{1, 1};
  EXPECT_THROW(DecodePlan(5, 3, gen, dup), PreconditionError);
  std::vector<byte_t> not_systematic = gen;
  not_systematic[1] = 7;  // break the identity block
  EXPECT_THROW(DecodePlan(5, 3, not_systematic, one), PreconditionError);
  EXPECT_THROW(DecodePlan(5, 3, std::vector<byte_t>(7), one), PreconditionError);
}

TEST(EcDecodePlan, PartitionsLossesAndPicksStripeOrderSurvivors) {
  const std::vector<byte_t> gen{1, 0, 0, 0, 1, 0, 0, 0, 1, 1, 1, 1, 1, 2, 3};
  const std::vector<std::size_t> lost{4, 1};
  const DecodePlan plan(5, 3, gen, lost);
  ASSERT_TRUE(plan.viable());
  EXPECT_EQ(plan.width(), 5u);
  EXPECT_EQ(plan.data_symbols(), 3u);
  EXPECT_EQ(plan.lost_data(), (std::vector<std::size_t>{1}));
  EXPECT_EQ(plan.lost_parity(), (std::vector<std::size_t>{4}));
  // Stripe-order greedy selection keeps the intact data rows first.
  EXPECT_EQ(plan.survivors(), (std::vector<std::size_t>{0, 2, 3}));
  EXPECT_EQ(plan.data_plan().rows(), 1u);
  EXPECT_EQ(plan.parity_plan().rows(), 1u);
}

TEST(EcDecodePlan, NonViablePatternRejectedByDecode) {
  // An LRC whose survivors cannot span the data: lose a whole group plus
  // its local parity with only one global. lrc(4,2,1): groups {0,1}+p4,
  // {2,3}+p5, global p6. Losing {0,1,4} leaves rank 3 < 4.
  const auto model = make_code_model(LevelCode::make_lrc(LrcCode{4, 2, 1}));
  const std::vector<std::size_t> lost{0, 1, 4};
  ASSERT_FALSE(model->can_repair(lost));

  // Rebuild the same generator shape the model uses to probe DecodePlan.
  std::vector<byte_t> gen(7 * 4, 0);
  for (std::size_t i = 0; i < 4; ++i) gen[i * 4 + i] = 1;
  gen[4 * 4 + 0] = gen[4 * 4 + 1] = 1;
  gen[5 * 4 + 2] = gen[5 * 4 + 3] = 1;
  const gf::Matrix global = gf::Matrix::cauchy(1, 4);
  for (std::size_t c = 0; c < 4; ++c) gen[6 * 4 + c] = global.at(0, c);

  const DecodePlan plan(7, 4, gen, lost);
  EXPECT_FALSE(plan.viable());
  std::vector<std::vector<byte_t>> shards(7, std::vector<byte_t>(64, 0));
  std::vector<byte_t*> ptrs;
  for (auto& s : shards) ptrs.push_back(s.data());
  EXPECT_THROW(decode(plan, ptrs.data(), 64), PreconditionError);
}

class EcDecodeDifferential : public ::testing::TestWithParam<Backend> {
 protected:
  void SkipUnlessSupported() {
    if (!backend_supported(GetParam()))
      GTEST_SKIP() << to_string(GetParam()) << " unsupported on this host/build";
  }
};

TEST_P(EcDecodeDifferential, MatchesScalarOverRandomPatterns) {
  SkipUnlessSupported();
  Rng rng(20240809);
  const std::vector<LevelCode> levels{
      LevelCode::make_rs({10, 4}),
      LevelCode::make_wide({50, 10}),
      LevelCode::make_lrc(LrcCode{12, 2, 2}),
  };
  for (const auto& level : levels) {
    const auto model = make_code_model(level);
    const std::size_t len = 1021;  // odd length through the fused kernels
    const auto shards = random_stripe(*model, len, rng);
    for (int round = 0; round < 12; ++round) {
      const std::size_t losses = 1 + rng.uniform_below(model->parity_chunks());
      const auto lost = random_decodable_pattern(*model, losses, rng);
      if (lost.empty()) continue;

      auto scalar_out = shards;
      auto backend_out = shards;
      for (auto idx : lost) {
        std::fill(scalar_out[idx].begin(), scalar_out[idx].end(), 0xAA);
        std::fill(backend_out[idx].begin(), backend_out[idx].end(), 0x55);
      }
      {
        ScopedBackend scope(Backend::kScalar);
        model->decode(scalar_out, lost);
      }
      {
        ScopedBackend scope(GetParam());
        model->decode(backend_out, lost);
      }
      for (std::size_t i = 0; i < model->width(); ++i) {
        ASSERT_EQ(backend_out[i], shards[i])
            << level.notation() << " shard " << i << " round " << round;
        ASSERT_EQ(backend_out[i], scalar_out[i])
            << level.notation() << " shard " << i << " round " << round;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, EcDecodeDifferential, ::testing::ValuesIn(all_backends()),
                         [](const auto& info) { return to_string(info.param); });

TEST(EcDecodeParallel, MatchesSerialBitExactly) {
  Rng rng(909);
  ThreadPool pool(4);
  const gf::RsCode code(10, 4);
  const std::size_t len = (1 << 20) | 37;  // force an odd tail slice
  std::vector<std::vector<byte_t>> data;
  for (std::size_t i = 0; i < 10; ++i) data.push_back(random_buffer(len, rng));
  std::vector<std::vector<byte_t>> parity(4, std::vector<byte_t>(len, 0));
  code.encode(data, parity);
  std::vector<std::vector<byte_t>> shards = data;
  shards.insert(shards.end(), parity.begin(), parity.end());

  const std::vector<std::size_t> lost{1, 7, 12};
  auto serial = shards;
  auto parallel = shards;
  for (auto idx : lost) {
    std::fill(serial[idx].begin(), serial[idx].end(), 0xAA);
    std::fill(parallel[idx].begin(), parallel[idx].end(), 0x55);
  }
  code.decode(serial, lost);
  ASSERT_TRUE(code.decode_parallel(parallel, lost, pool));
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(serial, shards);
}

TEST(EcDecodeParallel, SmallSlicesAndNumaOffStayIdentical) {
  Rng rng(910);
  ThreadPool pool(3);
  const gf::RsCode code(6, 3);
  const std::size_t len = 300001;
  std::vector<std::vector<byte_t>> data;
  for (std::size_t i = 0; i < 6; ++i) data.push_back(random_buffer(len, rng));
  std::vector<std::vector<byte_t>> parity(3, std::vector<byte_t>(len, 0));
  code.encode(data, parity);
  std::vector<std::vector<byte_t>> shards = data;
  shards.insert(shards.end(), parity.begin(), parity.end());

  const std::vector<std::size_t> lost{0, 8};
  auto expect = shards;
  for (auto idx : lost) std::fill(expect[idx].begin(), expect[idx].end(), 0xAA);
  code.decode(expect, lost);

  const auto plan = code.decode_plan(lost);
  for (const bool numa : {true, false}) {
    auto got = shards;
    for (auto idx : lost) std::fill(got[idx].begin(), got[idx].end(), 0x55);
    std::vector<std::span<byte_t>> spans(got.begin(), got.end());
    StreamOptions opts;
    opts.min_slice_bytes = 4096;
    opts.numa_aware = numa;
    ASSERT_TRUE(decode_parallel(*plan, std::span<const std::span<byte_t>>(spans), pool, {}, opts));
    EXPECT_EQ(got, expect) << "numa_aware=" << numa;
  }
}

TEST(EcDecodeParallel, StoppedTokenTruncates) {
  ThreadPool pool(2);
  const gf::RsCode code(4, 2);
  StopSource source;
  source.request_stop();
  std::vector<std::vector<byte_t>> shards(6, std::vector<byte_t>(1024, 1));
  const std::vector<std::size_t> lost{2};
  EXPECT_FALSE(code.decode_parallel(shards, lost, pool, source.token()));
}

TEST(EcDecodeParallel, FirstTouchAndNodeCountAreSane) {
  ThreadPool pool(2);
  std::vector<byte_t> buf(1 << 20, 0);
  first_touch_parallel(std::span<byte_t>(buf), pool);
  EXPECT_GE(numa_node_count(), 1u);
}

TEST(EcPlanCache, RsCachesOnePlanPerPattern) {
  const gf::RsCode code(8, 3);
  EXPECT_EQ(code.cached_decode_plans(), 0u);
  const std::vector<std::size_t> a{2, 9};
  const std::vector<std::size_t> a_reordered{9, 2};
  const std::vector<std::size_t> b{0};
  const auto p1 = code.decode_plan(a);
  const auto p2 = code.decode_plan(a_reordered);  // sorted key: same pattern
  EXPECT_EQ(p1.get(), p2.get());
  EXPECT_EQ(code.cached_decode_plans(), 1u);
  code.decode_plan(b);
  EXPECT_EQ(code.cached_decode_plans(), 2u);

  // Repeated decodes of a cached pattern reuse the plan and still rebuild.
  Rng rng(111);
  std::vector<std::vector<byte_t>> data;
  for (std::size_t i = 0; i < 8; ++i) data.push_back(random_buffer(257, rng));
  std::vector<std::vector<byte_t>> parity(3, std::vector<byte_t>(257, 0));
  code.encode(data, parity);
  std::vector<std::vector<byte_t>> shards = data;
  shards.insert(shards.end(), parity.begin(), parity.end());
  auto damaged = shards;
  for (auto idx : a) std::fill(damaged[idx].begin(), damaged[idx].end(), 0);
  code.decode(damaged, a);
  EXPECT_EQ(damaged, shards);
  EXPECT_EQ(code.cached_decode_plans(), 2u);
}

TEST(EcPlanCache, RejectsOverParityLoss) {
  const gf::RsCode code(4, 2);
  const std::vector<std::size_t> too_many{0, 1, 2};
  EXPECT_THROW(code.decode_plan(too_many), PreconditionError);
  const gf::RsCode no_parity(4, 0);
  const std::vector<std::size_t> one{0};
  EXPECT_THROW(no_parity.decode_plan(one), PreconditionError);
}

}  // namespace
}  // namespace mlec::ec
