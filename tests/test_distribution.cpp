#include "math/distribution.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace mlec {
namespace {

TEST(DiscreteDist, DeltaAndTail) {
  const auto d = DiscreteDist::delta(3);
  EXPECT_EQ(d.size(), 4u);
  EXPECT_DOUBLE_EQ(d.pmf(3), 1.0);
  EXPECT_DOUBLE_EQ(d.tail_geq(3), 1.0);
  EXPECT_DOUBLE_EQ(d.tail_geq(4), 0.0);
  EXPECT_DOUBLE_EQ(d.mean(), 3.0);
}

TEST(DiscreteDist, PmfOutOfRangeIsZero) {
  const DiscreteDist d(std::vector<double>{0.5, 0.5});
  EXPECT_DOUBLE_EQ(d.pmf(7), 0.0);
}

TEST(DiscreteDist, RejectsNegativeMass) {
  EXPECT_THROW(DiscreteDist(std::vector<double>{0.5, -0.1}), PreconditionError);
}

TEST(DiscreteDist, ConvolveMatchesDiceSum) {
  std::vector<double> pmf(7, 1.0 / 6.0);
  pmf[0] = 0.0;
  const DiscreteDist d(pmf);
  const auto sum = d.convolve(d);
  // P(sum of two dice = 7) = 6/36.
  EXPECT_NEAR(sum.pmf(7), 6.0 / 36.0, 1e-12);
  EXPECT_NEAR(sum.pmf(2), 1.0 / 36.0, 1e-12);
  EXPECT_NEAR(sum.pmf(12), 1.0 / 36.0, 1e-12);
  EXPECT_NEAR(sum.total_mass(), 1.0, 1e-12);
}

TEST(DiscreteDist, SaturatingConvolveLumpsMass) {
  const DiscreteDist d(std::vector<double>{0.5, 0.5});  // fair coin
  auto sum = d.convolve(d, 1);                          // cap at 1
  ASSERT_EQ(sum.size(), 2u);
  EXPECT_NEAR(sum.pmf(0), 0.25, 1e-12);
  EXPECT_NEAR(sum.pmf(1), 0.75, 1e-12);  // P(X+Y >= 1)
}

TEST(DiscreteDist, NormalizeRequiresMass) {
  DiscreteDist zero(std::vector<double>{0.0, 0.0});
  EXPECT_THROW(zero.normalize(), PreconditionError);
}

TEST(DiscreteDist, SamplerMatchesDistribution) {
  DiscreteDist d(std::vector<double>{0.2, 0.5, 0.3});
  const DiscreteDist::Sampler sampler(d);
  Rng rng(77);
  std::vector<int> counts(3, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++counts[sampler(rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.2, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.5, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.3, 0.01);
}

TEST(DiscreteDist, DirectSampleAgrees) {
  DiscreteDist d(std::vector<double>{0.7, 0.3});
  Rng rng(3);
  int ones = 0;
  for (int i = 0; i < 10000; ++i) ones += d.sample(rng) == 1 ? 1 : 0;
  EXPECT_NEAR(ones / 10000.0, 0.3, 0.02);
}

}  // namespace
}  // namespace mlec
