#include "math/markov.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace mlec {
namespace {

TEST(BirthDeath, SingleStateIsExponentialMean) {
  BirthDeathChain chain;
  chain.birth = {0.5};
  chain.death = {0.0};
  EXPECT_NEAR(chain.mean_time_to_absorption(), 2.0, 1e-12);
}

TEST(BirthDeath, TwoStateClosedForm) {
  // States 0,1 -> absorb at 2. E[T] = 1/l0 + 1/l1 + m1/(l0*l1).
  const double l0 = 0.3, l1 = 0.7, m1 = 2.0;
  BirthDeathChain chain;
  chain.birth = {l0, l1};
  chain.death = {0.0, m1};
  EXPECT_NEAR(chain.mean_time_to_absorption(), 1 / l0 + 1 / l1 + m1 / (l0 * l1), 1e-12);
}

TEST(BirthDeath, AgreesWithSimulation) {
  BirthDeathChain chain;
  chain.birth = {1.0, 2.0, 0.5};
  chain.death = {0.0, 3.0, 1.5};
  const double analytic = chain.mean_time_to_absorption();

  Rng rng(99);
  double total = 0;
  const int trials = 200000;
  for (int t = 0; t < trials; ++t) {
    int state = 0;
    double time = 0;
    while (state < 3) {
      const double b = chain.birth[state];
      const double d = state > 0 ? chain.death[state] : 0.0;
      time += rng.exponential(b + d);
      state += rng.bernoulli(b / (b + d)) ? 1 : -1;
    }
    total += time;
  }
  EXPECT_NEAR(total / trials, analytic, analytic * 0.02);
}

TEST(BirthDeath, RejectsZeroBirth) {
  BirthDeathChain chain;
  chain.birth = {0.0};
  chain.death = {0.0};
  EXPECT_THROW(chain.mean_time_to_absorption(), PreconditionError);
}

TEST(ErasureSet, MirroredPairKnownFormula) {
  // (1+1) mirror: MTTDL = (3λ + μ) / (2λ^2) for single repair.
  const double lambda = 0.001, mu = 0.5;
  const double expected = (3 * lambda + mu) / (2 * lambda * lambda);
  EXPECT_NEAR(erasure_set_mttdl(1, 1, lambda, mu), expected, expected * 1e-9);
}

TEST(ErasureSet, NoParityIsFirstFailure) {
  // k disks, p=0: data lost on the first failure of any of the k units.
  EXPECT_NEAR(erasure_set_mttdl(4, 0, 0.01, 1.0), 1.0 / (4 * 0.01), 1e-9);
}

TEST(ErasureSet, ParallelRepairBeatsSingle) {
  const double single = erasure_set_mttdl(10, 3, 1e-5, 0.01, false);
  const double parallel = erasure_set_mttdl(10, 3, 1e-5, 0.01, true);
  EXPECT_GT(parallel, single);
}

TEST(ErasureSet, MoreParityMoreDurability) {
  double prev = 0;
  for (std::size_t p = 0; p <= 4; ++p) {
    const double mttdl = erasure_set_mttdl(10, p, 1e-5, 0.01);
    EXPECT_GT(mttdl, prev);
    prev = mttdl;
  }
}

TEST(MlecMarkov, TwoLevelBeatsEitherLevelAlone) {
  MlecMarkovParams params;
  params.kn = 10;
  params.pn = 2;
  params.kl = 17;
  params.pl = 3;
  params.local_pool_disks = 20;
  params.disk_fail_rate = 0.01 / 8766.0;
  params.disk_repair_rate = 1.0 / 139.0;
  params.pool_repair_rate = 1.0 / 445.0;
  params.network_pools = 240;
  const auto r = mlec_markov_mttdl(params);
  EXPECT_GT(r.local_pool_mttf_hours, 0.0);
  EXPECT_GT(r.network_pool_mttdl_hours, r.local_pool_mttf_hours);
  EXPECT_NEAR(r.system_mttdl_hours, r.network_pool_mttdl_hours / 240.0, 1e-6);
}

TEST(Nines, RoundTrips) {
  EXPECT_NEAR(durability_nines(1e-5), 5.0, 1e-12);
  EXPECT_NEAR(pdl_from_nines(5.0), 1e-5, 1e-17);
  EXPECT_TRUE(std::isinf(durability_nines(0.0)));
  EXPECT_THROW(durability_nines(1.5), PreconditionError);
}

TEST(Mission, PdlOverMission) {
  // Mission much shorter than MTTDL: PDL ~ mission/mttdl.
  EXPECT_NEAR(pdl_over_mission(1e9, 8766.0), 8766.0 / 1e9, 1e-10);
  // Mission equal to MTTDL: 1 - 1/e.
  EXPECT_NEAR(pdl_over_mission(100.0, 100.0), 1.0 - std::exp(-1.0), 1e-12);
}

}  // namespace
}  // namespace mlec
