#include "analysis/durability.hpp"

#include "analysis/burst_pdl.hpp"

#include <gtest/gtest.h>

#include "sim/local_pool_sim.hpp"
#include "util/units.hpp"

namespace mlec {
namespace {

const DurabilityEnv kEnv{};  // paper §3 defaults
const MlecCode kCode = MlecCode::paper_default();

TEST(LocalPoolStats, ClusteredRateIsLowAndFractionBounded) {
  const auto stats = local_pool_stats(kEnv, kCode.local, Placement::kClustered, 20);
  EXPECT_GT(stats.cat_rate_per_pool_year, 0.0);
  EXPECT_LT(stats.cat_rate_per_pool_year, 1e-6);
  EXPECT_GT(stats.lost_stripe_fraction, 0.0);
  EXPECT_LE(stats.lost_stripe_fraction, 1.0);
}

TEST(LocalPoolStats, DeclusteredPoolIsMoreDurablePerPool) {
  // Paper Figure 7: local-Dp pools are orders of magnitude less likely to go
  // catastrophic, and the system has fewer of them.
  const auto cp = local_pool_stats(kEnv, kCode.local, Placement::kClustered, 20);
  const auto dp = local_pool_stats(kEnv, kCode.local, Placement::kDeclustered, 120);
  EXPECT_LT(dp.cat_rate_per_pool_year, cp.cat_rate_per_pool_year);
  // Dp lost-stripe fraction is the small hypergeometric tail.
  EXPECT_LT(dp.lost_stripe_fraction, 1e-3);
}

TEST(LocalPoolStats, FromSimulation) {
  LocalPoolSimConfig cfg;
  cfg.code = {4, 2};
  cfg.placement = Placement::kClustered;
  cfg.pool_disks = 6;
  cfg.afr = 0.9;
  cfg.disk_capacity_tb = 60.0;
  Rng rng(3);
  const auto sim = simulate_local_pool(cfg, 2000, rng);
  const auto stats = local_pool_stats_from_sim(sim);
  EXPECT_NEAR(stats.cat_rate_per_pool_year, sim.catastrophe_rate_per_year(), 1e-12);
  EXPECT_GT(stats.lost_stripe_fraction, 0.0);
}

TEST(MlecDurability, Figure10MethodLadder) {
  for (auto scheme : kAllMlecSchemes) {
    double prev = 0.0;
    for (auto method : kAllRepairMethods) {
      const auto r = mlec_durability(kEnv, kCode, scheme, method);
      EXPECT_GE(r.nines, prev - 1e-9) << to_string(scheme) << " " << to_string(method);
      EXPECT_GT(r.nines, 15.0);
      EXPECT_LE(r.coverage, 1.0);
      prev = r.nines;
    }
  }
}

TEST(MlecDurability, Figure10SchemeRanking) {
  // After all optimizations (R_MIN): C/D and D/D best, D/C worst (F#4).
  const double cc = mlec_durability(kEnv, kCode, MlecScheme::kCC, RepairMethod::kRepairMinimum).nines;
  const double cd = mlec_durability(kEnv, kCode, MlecScheme::kCD, RepairMethod::kRepairMinimum).nines;
  const double dc = mlec_durability(kEnv, kCode, MlecScheme::kDC, RepairMethod::kRepairMinimum).nines;
  const double dd = mlec_durability(kEnv, kCode, MlecScheme::kDD, RepairMethod::kRepairMinimum).nines;
  EXPECT_GT(cd, cc);
  EXPECT_GT(dd, cc);
  EXPECT_LT(dc, cc);
}

TEST(MlecDurability, RfcoGainLargestOnDD) {
  // Paper F#1 (§4.2.3): +6.6 nines on D/D thanks to the 0.03% coverage.
  auto gain = [&](MlecScheme s) {
    return mlec_durability(kEnv, kCode, s, RepairMethod::kRepairFailedOnly).nines -
           mlec_durability(kEnv, kCode, s, RepairMethod::kRepairAll).nines;
  };
  EXPECT_GT(gain(MlecScheme::kDD), gain(MlecScheme::kCC));
  EXPECT_GT(gain(MlecScheme::kDD), 4.0);
  EXPECT_GT(gain(MlecScheme::kCC), 0.4);
}

TEST(MlecDurability, CoverageBelowOneOnlyForChunkAwareMethods) {
  const auto rall = mlec_durability(kEnv, kCode, MlecScheme::kDD, RepairMethod::kRepairAll);
  EXPECT_DOUBLE_EQ(rall.coverage, 1.0);
  const auto rfco =
      mlec_durability(kEnv, kCode, MlecScheme::kDD, RepairMethod::kRepairFailedOnly);
  // The paper's "0.03%" stripe-coverage effect for D/D.
  EXPECT_LT(rfco.coverage, 0.01);
  EXPECT_GT(rfco.coverage, 1e-6);
}

TEST(MlecDurability, DetectionTimeFloorsTheGain) {
  // Shrinking detection time improves durability; with zero detection the
  // declustered schemes gain the most (paper §5.2.2 F#2).
  DurabilityEnv fast = kEnv;
  fast.detection_hours = 1.0 / 60.0;
  const double slow_dd =
      mlec_durability(kEnv, kCode, MlecScheme::kDD, RepairMethod::kRepairMinimum).nines;
  const double fast_dd =
      mlec_durability(fast, kCode, MlecScheme::kDD, RepairMethod::kRepairMinimum).nines;
  EXPECT_GT(fast_dd, slow_dd + 1.0);
}

TEST(MlecDurability, SplittingOverrideIsHonored) {
  LocalPoolStats stage1;
  stage1.cat_rate_per_pool_year = 1e-4;  // much worse pools than analytic
  stage1.lost_stripe_fraction = 0.1;
  const auto with_override =
      mlec_durability(kEnv, kCode, MlecScheme::kCC, RepairMethod::kRepairAll, stage1);
  const auto analytic = mlec_durability(kEnv, kCode, MlecScheme::kCC, RepairMethod::kRepairAll);
  EXPECT_LT(with_override.nines, analytic.nines);
  EXPECT_NEAR(with_override.system_cat_rate_per_year, 1e-4 * 2880, 1e-6);
}

TEST(SlecDurability, PaperFigure12Anchor) {
  // The paper quotes local (28+12) SLEC at 33 nines.
  const auto r = slec_durability(kEnv, {28, 12}, {SlecDomain::kLocal, Placement::kClustered});
  EXPECT_NEAR(r.nines, 33.0, 1.5);
}

TEST(SlecDurability, MoreParitiesMoreNines) {
  for (auto scheme : kAllSlecSchemes) {
    double prev = -1.0;
    for (std::size_t i = 1; i <= 4; ++i) {
      const SlecCode code{7 * i, 3 * i};
      if (scheme.placement == Placement::kClustered) {
        const std::size_t w = code.width();
        const bool fits = scheme.domain == SlecDomain::kLocal ? (120 % w == 0) : (60 % w == 0);
        if (!fits) continue;
      }
      const auto r = slec_durability(kEnv, code, scheme);
      EXPECT_GT(r.nines, prev) << to_string(scheme) << " " << code.notation();
      prev = r.nines;
    }
  }
}

TEST(LrcDurability, GrowsWithGlobalParities) {
  double prev = -1.0;
  for (std::size_t i = 1; i <= 4; ++i) {
    const LrcCode code{7 * i, i, 2 * i};
    const auto r = lrc_durability(kEnv, code);
    EXPECT_GT(r.nines, prev) << code.notation();
    prev = r.nines;
  }
}

TEST(UreExtension, ZeroRateIsPaperModel) {
  DurabilityEnv with_zero = kEnv;
  with_zero.ure_per_bit = 0.0;
  for (auto scheme : kAllMlecSchemes) {
    const auto base = mlec_durability(kEnv, kCode, scheme, RepairMethod::kRepairMinimum);
    const auto zero = mlec_durability(with_zero, kCode, scheme, RepairMethod::kRepairMinimum);
    EXPECT_DOUBLE_EQ(base.nines, zero.nines);
  }
}

TEST(UreExtension, MoreErrorsFewerNines) {
  double prev = 1e9;
  for (double ure : {1e-18, 1e-16, 1e-14}) {
    DurabilityEnv env = kEnv;
    env.ure_per_bit = ure;
    const auto r = mlec_durability(env, kCode, MlecScheme::kCC, RepairMethod::kRepairMinimum);
    EXPECT_LT(r.nines, prev);
    prev = r.nines;
  }
}

TEST(UreExtension, RaisesCatastropheRateOnBothPoolTypes) {
  DurabilityEnv env = kEnv;
  env.ure_per_bit = 1e-15;
  const auto cp_base = local_pool_stats(kEnv, kCode.local, Placement::kClustered, 20);
  const auto cp_ure = local_pool_stats(env, kCode.local, Placement::kClustered, 20);
  EXPECT_GT(cp_ure.cat_rate_per_pool_year, cp_base.cat_rate_per_pool_year * 10);
  const auto dp_base = local_pool_stats(kEnv, kCode.local, Placement::kDeclustered, 120);
  const auto dp_ure = local_pool_stats(env, kCode.local, Placement::kDeclustered, 120);
  EXPECT_GT(dp_ure.cat_rate_per_pool_year, dp_base.cat_rate_per_pool_year);
}

TEST(BurstClimateDurability, ZeroRateMatchesIndependent) {
  BurstPdlConfig cfg;
  cfg.trials_per_cell = 50;
  const BurstPdlEngine engine(cfg);
  const auto plain = mlec_durability(kEnv, kCode, MlecScheme::kCC, RepairMethod::kRepairMinimum);
  const auto mixed = mlec_durability_with_bursts(
      kEnv, kCode, MlecScheme::kCC, RepairMethod::kRepairMinimum, {0.0, 3, 30}, engine);
  EXPECT_NEAR(mixed.nines, plain.nines, 1e-9);
}

TEST(BurstClimateDurability, MoreBurstsFewerNines) {
  BurstPdlConfig cfg;
  cfg.trials_per_cell = 300;
  const BurstPdlEngine engine(cfg);
  double prev = 1e9;
  for (double rate : {0.01, 0.1, 1.0}) {
    const auto r = mlec_durability_with_bursts(
        kEnv, kCode, MlecScheme::kDD, RepairMethod::kRepairMinimum, {rate, 3, 30}, engine);
    EXPECT_LT(r.nines, prev);
    prev = r.nines;
  }
}

TEST(BurstClimateDurability, Takeaways3And4Crossover) {
  // Quiet climate: C/D (or D/D) on top; bursty climate: C/C on top.
  BurstPdlConfig cfg;
  cfg.trials_per_cell = 300;
  const BurstPdlEngine engine(cfg);
  auto nines = [&](MlecScheme scheme, double rate) {
    return mlec_durability_with_bursts(kEnv, kCode, scheme, RepairMethod::kRepairMinimum,
                                       {rate, 3, 30}, engine)
        .nines;
  };
  EXPECT_GT(nines(MlecScheme::kCD, 0.0), nines(MlecScheme::kCC, 0.0));
  EXPECT_GT(nines(MlecScheme::kCC, 1.0), nines(MlecScheme::kCD, 1.0));
}

TEST(LrcDurability, BelowComparableMlec) {
  // Figure 15: at ~30% overhead, C/D with R_MIN beats LRC-Dp under the
  // 30-minute detection floor.
  const auto mlec =
      mlec_durability(kEnv, kCode, MlecScheme::kCD, RepairMethod::kRepairMinimum);
  const auto lrc = lrc_durability(kEnv, {14, 2, 4});
  EXPECT_GT(mlec.nines, lrc.nines);
}

}  // namespace
}  // namespace mlec
