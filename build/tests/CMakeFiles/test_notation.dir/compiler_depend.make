# Empty compiler generated dependencies file for test_notation.
# This may be replaced when dependencies are built.
