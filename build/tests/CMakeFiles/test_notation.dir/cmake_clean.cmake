file(REMOVE_RECURSE
  "CMakeFiles/test_notation.dir/test_notation.cpp.o"
  "CMakeFiles/test_notation.dir/test_notation.cpp.o.d"
  "test_notation"
  "test_notation.pdb"
  "test_notation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_notation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
