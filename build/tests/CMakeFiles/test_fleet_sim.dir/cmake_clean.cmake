file(REMOVE_RECURSE
  "CMakeFiles/test_fleet_sim.dir/test_fleet_sim.cpp.o"
  "CMakeFiles/test_fleet_sim.dir/test_fleet_sim.cpp.o.d"
  "test_fleet_sim"
  "test_fleet_sim.pdb"
  "test_fleet_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fleet_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
