# Empty dependencies file for test_declustered.
# This may be replaced when dependencies are built.
