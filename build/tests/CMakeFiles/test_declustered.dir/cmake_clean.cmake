file(REMOVE_RECURSE
  "CMakeFiles/test_declustered.dir/test_declustered.cpp.o"
  "CMakeFiles/test_declustered.dir/test_declustered.cpp.o.d"
  "test_declustered"
  "test_declustered.pdb"
  "test_declustered[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_declustered.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
