file(REMOVE_RECURSE
  "CMakeFiles/test_spec_io.dir/test_spec_io.cpp.o"
  "CMakeFiles/test_spec_io.dir/test_spec_io.cpp.o.d"
  "test_spec_io"
  "test_spec_io.pdb"
  "test_spec_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spec_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
