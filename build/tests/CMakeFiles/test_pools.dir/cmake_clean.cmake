file(REMOVE_RECURSE
  "CMakeFiles/test_pools.dir/test_pools.cpp.o"
  "CMakeFiles/test_pools.dir/test_pools.cpp.o.d"
  "test_pools"
  "test_pools.pdb"
  "test_pools[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
