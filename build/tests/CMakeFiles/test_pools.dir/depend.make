# Empty dependencies file for test_pools.
# This may be replaced when dependencies are built.
