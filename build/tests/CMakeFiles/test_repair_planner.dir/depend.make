# Empty dependencies file for test_repair_planner.
# This may be replaced when dependencies are built.
