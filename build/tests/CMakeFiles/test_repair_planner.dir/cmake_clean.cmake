file(REMOVE_RECURSE
  "CMakeFiles/test_repair_planner.dir/test_repair_planner.cpp.o"
  "CMakeFiles/test_repair_planner.dir/test_repair_planner.cpp.o.d"
  "test_repair_planner"
  "test_repair_planner.pdb"
  "test_repair_planner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_repair_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
