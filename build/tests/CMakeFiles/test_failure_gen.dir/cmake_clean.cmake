file(REMOVE_RECURSE
  "CMakeFiles/test_failure_gen.dir/test_failure_gen.cpp.o"
  "CMakeFiles/test_failure_gen.dir/test_failure_gen.cpp.o.d"
  "test_failure_gen"
  "test_failure_gen.pdb"
  "test_failure_gen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_failure_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
