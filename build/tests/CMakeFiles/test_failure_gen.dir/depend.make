# Empty dependencies file for test_failure_gen.
# This may be replaced when dependencies are built.
