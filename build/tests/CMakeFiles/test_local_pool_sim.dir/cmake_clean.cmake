file(REMOVE_RECURSE
  "CMakeFiles/test_local_pool_sim.dir/test_local_pool_sim.cpp.o"
  "CMakeFiles/test_local_pool_sim.dir/test_local_pool_sim.cpp.o.d"
  "test_local_pool_sim"
  "test_local_pool_sim.pdb"
  "test_local_pool_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_local_pool_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
