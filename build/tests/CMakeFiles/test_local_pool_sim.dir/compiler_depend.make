# Empty compiler generated dependencies file for test_local_pool_sim.
# This may be replaced when dependencies are built.
