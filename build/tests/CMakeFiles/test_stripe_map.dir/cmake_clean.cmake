file(REMOVE_RECURSE
  "CMakeFiles/test_stripe_map.dir/test_stripe_map.cpp.o"
  "CMakeFiles/test_stripe_map.dir/test_stripe_map.cpp.o.d"
  "test_stripe_map"
  "test_stripe_map.pdb"
  "test_stripe_map[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stripe_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
