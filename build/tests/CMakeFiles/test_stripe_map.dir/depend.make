# Empty dependencies file for test_stripe_map.
# This may be replaced when dependencies are built.
