file(REMOVE_RECURSE
  "CMakeFiles/test_repair_executor.dir/test_repair_executor.cpp.o"
  "CMakeFiles/test_repair_executor.dir/test_repair_executor.cpp.o.d"
  "test_repair_executor"
  "test_repair_executor.pdb"
  "test_repair_executor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_repair_executor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
