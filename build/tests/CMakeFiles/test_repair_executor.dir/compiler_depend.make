# Empty compiler generated dependencies file for test_repair_executor.
# This may be replaced when dependencies are built.
