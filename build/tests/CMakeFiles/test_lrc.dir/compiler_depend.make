# Empty compiler generated dependencies file for test_lrc.
# This may be replaced when dependencies are built.
