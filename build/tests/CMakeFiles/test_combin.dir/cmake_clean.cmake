file(REMOVE_RECURSE
  "CMakeFiles/test_combin.dir/test_combin.cpp.o"
  "CMakeFiles/test_combin.dir/test_combin.cpp.o.d"
  "test_combin"
  "test_combin.pdb"
  "test_combin[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_combin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
