# Empty dependencies file for test_combin.
# This may be replaced when dependencies are built.
