# Empty compiler generated dependencies file for test_durability.
# This may be replaced when dependencies are built.
