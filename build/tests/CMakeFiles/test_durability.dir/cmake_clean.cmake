file(REMOVE_RECURSE
  "CMakeFiles/test_durability.dir/test_durability.cpp.o"
  "CMakeFiles/test_durability.dir/test_durability.cpp.o.d"
  "test_durability"
  "test_durability.pdb"
  "test_durability[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_durability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
