# Empty dependencies file for test_burst_pdl.
# This may be replaced when dependencies are built.
