file(REMOVE_RECURSE
  "CMakeFiles/test_burst_pdl.dir/test_burst_pdl.cpp.o"
  "CMakeFiles/test_burst_pdl.dir/test_burst_pdl.cpp.o.d"
  "test_burst_pdl"
  "test_burst_pdl.pdb"
  "test_burst_pdl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_burst_pdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
