file(REMOVE_RECURSE
  "CMakeFiles/test_repair_time.dir/test_repair_time.cpp.o"
  "CMakeFiles/test_repair_time.dir/test_repair_time.cpp.o.d"
  "test_repair_time"
  "test_repair_time.pdb"
  "test_repair_time[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_repair_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
