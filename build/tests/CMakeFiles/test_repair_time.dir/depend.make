# Empty dependencies file for test_repair_time.
# This may be replaced when dependencies are built.
