file(REMOVE_RECURSE
  "CMakeFiles/repair_drill.dir/repair_drill.cpp.o"
  "CMakeFiles/repair_drill.dir/repair_drill.cpp.o.d"
  "repair_drill"
  "repair_drill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repair_drill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
