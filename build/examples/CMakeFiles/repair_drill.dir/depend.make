# Empty dependencies file for repair_drill.
# This may be replaced when dependencies are built.
