file(REMOVE_RECURSE
  "CMakeFiles/mlec_analysis.dir/burst_pdl.cpp.o"
  "CMakeFiles/mlec_analysis.dir/burst_pdl.cpp.o.d"
  "CMakeFiles/mlec_analysis.dir/durability.cpp.o"
  "CMakeFiles/mlec_analysis.dir/durability.cpp.o.d"
  "CMakeFiles/mlec_analysis.dir/encoding.cpp.o"
  "CMakeFiles/mlec_analysis.dir/encoding.cpp.o.d"
  "CMakeFiles/mlec_analysis.dir/fleet_sim.cpp.o"
  "CMakeFiles/mlec_analysis.dir/fleet_sim.cpp.o.d"
  "CMakeFiles/mlec_analysis.dir/repair_time.cpp.o"
  "CMakeFiles/mlec_analysis.dir/repair_time.cpp.o.d"
  "CMakeFiles/mlec_analysis.dir/tradeoff.cpp.o"
  "CMakeFiles/mlec_analysis.dir/tradeoff.cpp.o.d"
  "CMakeFiles/mlec_analysis.dir/traffic.cpp.o"
  "CMakeFiles/mlec_analysis.dir/traffic.cpp.o.d"
  "libmlec_analysis.a"
  "libmlec_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlec_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
