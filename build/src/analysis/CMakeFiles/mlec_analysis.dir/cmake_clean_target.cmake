file(REMOVE_RECURSE
  "libmlec_analysis.a"
)
