# Empty compiler generated dependencies file for mlec_analysis.
# This may be replaced when dependencies are built.
