
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/burst_pdl.cpp" "src/analysis/CMakeFiles/mlec_analysis.dir/burst_pdl.cpp.o" "gcc" "src/analysis/CMakeFiles/mlec_analysis.dir/burst_pdl.cpp.o.d"
  "/root/repo/src/analysis/durability.cpp" "src/analysis/CMakeFiles/mlec_analysis.dir/durability.cpp.o" "gcc" "src/analysis/CMakeFiles/mlec_analysis.dir/durability.cpp.o.d"
  "/root/repo/src/analysis/encoding.cpp" "src/analysis/CMakeFiles/mlec_analysis.dir/encoding.cpp.o" "gcc" "src/analysis/CMakeFiles/mlec_analysis.dir/encoding.cpp.o.d"
  "/root/repo/src/analysis/fleet_sim.cpp" "src/analysis/CMakeFiles/mlec_analysis.dir/fleet_sim.cpp.o" "gcc" "src/analysis/CMakeFiles/mlec_analysis.dir/fleet_sim.cpp.o.d"
  "/root/repo/src/analysis/repair_time.cpp" "src/analysis/CMakeFiles/mlec_analysis.dir/repair_time.cpp.o" "gcc" "src/analysis/CMakeFiles/mlec_analysis.dir/repair_time.cpp.o.d"
  "/root/repo/src/analysis/tradeoff.cpp" "src/analysis/CMakeFiles/mlec_analysis.dir/tradeoff.cpp.o" "gcc" "src/analysis/CMakeFiles/mlec_analysis.dir/tradeoff.cpp.o.d"
  "/root/repo/src/analysis/traffic.cpp" "src/analysis/CMakeFiles/mlec_analysis.dir/traffic.cpp.o" "gcc" "src/analysis/CMakeFiles/mlec_analysis.dir/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mlec_util.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/mlec_math.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/mlec_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/mlec_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/placement/CMakeFiles/mlec_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mlec_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
