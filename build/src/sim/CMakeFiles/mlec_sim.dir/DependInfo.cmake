
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/failure_gen.cpp" "src/sim/CMakeFiles/mlec_sim.dir/failure_gen.cpp.o" "gcc" "src/sim/CMakeFiles/mlec_sim.dir/failure_gen.cpp.o.d"
  "/root/repo/src/sim/local_pool_sim.cpp" "src/sim/CMakeFiles/mlec_sim.dir/local_pool_sim.cpp.o" "gcc" "src/sim/CMakeFiles/mlec_sim.dir/local_pool_sim.cpp.o.d"
  "/root/repo/src/sim/repair_executor.cpp" "src/sim/CMakeFiles/mlec_sim.dir/repair_executor.cpp.o" "gcc" "src/sim/CMakeFiles/mlec_sim.dir/repair_executor.cpp.o.d"
  "/root/repo/src/sim/repair_planner.cpp" "src/sim/CMakeFiles/mlec_sim.dir/repair_planner.cpp.o" "gcc" "src/sim/CMakeFiles/mlec_sim.dir/repair_planner.cpp.o.d"
  "/root/repo/src/sim/system_sim.cpp" "src/sim/CMakeFiles/mlec_sim.dir/system_sim.cpp.o" "gcc" "src/sim/CMakeFiles/mlec_sim.dir/system_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mlec_util.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/mlec_math.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/mlec_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/mlec_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/placement/CMakeFiles/mlec_placement.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
