# Empty dependencies file for mlec_sim.
# This may be replaced when dependencies are built.
