file(REMOVE_RECURSE
  "libmlec_sim.a"
)
