file(REMOVE_RECURSE
  "CMakeFiles/mlec_sim.dir/failure_gen.cpp.o"
  "CMakeFiles/mlec_sim.dir/failure_gen.cpp.o.d"
  "CMakeFiles/mlec_sim.dir/local_pool_sim.cpp.o"
  "CMakeFiles/mlec_sim.dir/local_pool_sim.cpp.o.d"
  "CMakeFiles/mlec_sim.dir/repair_executor.cpp.o"
  "CMakeFiles/mlec_sim.dir/repair_executor.cpp.o.d"
  "CMakeFiles/mlec_sim.dir/repair_planner.cpp.o"
  "CMakeFiles/mlec_sim.dir/repair_planner.cpp.o.d"
  "CMakeFiles/mlec_sim.dir/system_sim.cpp.o"
  "CMakeFiles/mlec_sim.dir/system_sim.cpp.o.d"
  "libmlec_sim.a"
  "libmlec_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlec_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
