# Empty dependencies file for mlec_core.
# This may be replaced when dependencies are built.
