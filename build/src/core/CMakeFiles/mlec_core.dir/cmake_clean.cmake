file(REMOVE_RECURSE
  "CMakeFiles/mlec_core.dir/advisor.cpp.o"
  "CMakeFiles/mlec_core.dir/advisor.cpp.o.d"
  "CMakeFiles/mlec_core.dir/analyzer.cpp.o"
  "CMakeFiles/mlec_core.dir/analyzer.cpp.o.d"
  "CMakeFiles/mlec_core.dir/spec_io.cpp.o"
  "CMakeFiles/mlec_core.dir/spec_io.cpp.o.d"
  "libmlec_core.a"
  "libmlec_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlec_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
