file(REMOVE_RECURSE
  "libmlec_core.a"
)
