
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/advisor.cpp" "src/core/CMakeFiles/mlec_core.dir/advisor.cpp.o" "gcc" "src/core/CMakeFiles/mlec_core.dir/advisor.cpp.o.d"
  "/root/repo/src/core/analyzer.cpp" "src/core/CMakeFiles/mlec_core.dir/analyzer.cpp.o" "gcc" "src/core/CMakeFiles/mlec_core.dir/analyzer.cpp.o.d"
  "/root/repo/src/core/spec_io.cpp" "src/core/CMakeFiles/mlec_core.dir/spec_io.cpp.o" "gcc" "src/core/CMakeFiles/mlec_core.dir/spec_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/mlec_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mlec_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/mlec_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/placement/CMakeFiles/mlec_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/mlec_math.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/mlec_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mlec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
