file(REMOVE_RECURSE
  "CMakeFiles/mlec_placement.dir/declustered.cpp.o"
  "CMakeFiles/mlec_placement.dir/declustered.cpp.o.d"
  "CMakeFiles/mlec_placement.dir/lrc.cpp.o"
  "CMakeFiles/mlec_placement.dir/lrc.cpp.o.d"
  "CMakeFiles/mlec_placement.dir/notation.cpp.o"
  "CMakeFiles/mlec_placement.dir/notation.cpp.o.d"
  "CMakeFiles/mlec_placement.dir/pools.cpp.o"
  "CMakeFiles/mlec_placement.dir/pools.cpp.o.d"
  "CMakeFiles/mlec_placement.dir/schemes.cpp.o"
  "CMakeFiles/mlec_placement.dir/schemes.cpp.o.d"
  "CMakeFiles/mlec_placement.dir/stripe_map.cpp.o"
  "CMakeFiles/mlec_placement.dir/stripe_map.cpp.o.d"
  "libmlec_placement.a"
  "libmlec_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlec_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
