file(REMOVE_RECURSE
  "libmlec_placement.a"
)
