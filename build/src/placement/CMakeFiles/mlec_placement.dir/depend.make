# Empty dependencies file for mlec_placement.
# This may be replaced when dependencies are built.
