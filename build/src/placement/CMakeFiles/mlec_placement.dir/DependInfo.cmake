
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/placement/declustered.cpp" "src/placement/CMakeFiles/mlec_placement.dir/declustered.cpp.o" "gcc" "src/placement/CMakeFiles/mlec_placement.dir/declustered.cpp.o.d"
  "/root/repo/src/placement/lrc.cpp" "src/placement/CMakeFiles/mlec_placement.dir/lrc.cpp.o" "gcc" "src/placement/CMakeFiles/mlec_placement.dir/lrc.cpp.o.d"
  "/root/repo/src/placement/notation.cpp" "src/placement/CMakeFiles/mlec_placement.dir/notation.cpp.o" "gcc" "src/placement/CMakeFiles/mlec_placement.dir/notation.cpp.o.d"
  "/root/repo/src/placement/pools.cpp" "src/placement/CMakeFiles/mlec_placement.dir/pools.cpp.o" "gcc" "src/placement/CMakeFiles/mlec_placement.dir/pools.cpp.o.d"
  "/root/repo/src/placement/schemes.cpp" "src/placement/CMakeFiles/mlec_placement.dir/schemes.cpp.o" "gcc" "src/placement/CMakeFiles/mlec_placement.dir/schemes.cpp.o.d"
  "/root/repo/src/placement/stripe_map.cpp" "src/placement/CMakeFiles/mlec_placement.dir/stripe_map.cpp.o" "gcc" "src/placement/CMakeFiles/mlec_placement.dir/stripe_map.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mlec_util.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/mlec_math.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/mlec_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
