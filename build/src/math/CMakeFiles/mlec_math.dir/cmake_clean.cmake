file(REMOVE_RECURSE
  "CMakeFiles/mlec_math.dir/allocation.cpp.o"
  "CMakeFiles/mlec_math.dir/allocation.cpp.o.d"
  "CMakeFiles/mlec_math.dir/combin.cpp.o"
  "CMakeFiles/mlec_math.dir/combin.cpp.o.d"
  "CMakeFiles/mlec_math.dir/distribution.cpp.o"
  "CMakeFiles/mlec_math.dir/distribution.cpp.o.d"
  "CMakeFiles/mlec_math.dir/markov.cpp.o"
  "CMakeFiles/mlec_math.dir/markov.cpp.o.d"
  "libmlec_math.a"
  "libmlec_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlec_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
