# Empty compiler generated dependencies file for mlec_math.
# This may be replaced when dependencies are built.
