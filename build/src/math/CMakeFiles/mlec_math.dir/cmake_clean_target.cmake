file(REMOVE_RECURSE
  "libmlec_math.a"
)
