file(REMOVE_RECURSE
  "libmlec_topology.a"
)
