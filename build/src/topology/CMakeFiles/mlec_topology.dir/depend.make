# Empty dependencies file for mlec_topology.
# This may be replaced when dependencies are built.
