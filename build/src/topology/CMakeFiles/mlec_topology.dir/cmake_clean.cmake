file(REMOVE_RECURSE
  "CMakeFiles/mlec_topology.dir/bandwidth.cpp.o"
  "CMakeFiles/mlec_topology.dir/bandwidth.cpp.o.d"
  "CMakeFiles/mlec_topology.dir/topology.cpp.o"
  "CMakeFiles/mlec_topology.dir/topology.cpp.o.d"
  "libmlec_topology.a"
  "libmlec_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlec_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
