# Empty dependencies file for mlec_gf.
# This may be replaced when dependencies are built.
