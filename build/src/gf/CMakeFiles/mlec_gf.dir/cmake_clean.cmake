file(REMOVE_RECURSE
  "CMakeFiles/mlec_gf.dir/gf256.cpp.o"
  "CMakeFiles/mlec_gf.dir/gf256.cpp.o.d"
  "CMakeFiles/mlec_gf.dir/matrix.cpp.o"
  "CMakeFiles/mlec_gf.dir/matrix.cpp.o.d"
  "CMakeFiles/mlec_gf.dir/rs.cpp.o"
  "CMakeFiles/mlec_gf.dir/rs.cpp.o.d"
  "libmlec_gf.a"
  "libmlec_gf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlec_gf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
