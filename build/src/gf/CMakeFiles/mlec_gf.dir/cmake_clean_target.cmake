file(REMOVE_RECURSE
  "libmlec_gf.a"
)
