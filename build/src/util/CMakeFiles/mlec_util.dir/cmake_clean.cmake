file(REMOVE_RECURSE
  "CMakeFiles/mlec_util.dir/ini.cpp.o"
  "CMakeFiles/mlec_util.dir/ini.cpp.o.d"
  "CMakeFiles/mlec_util.dir/progress.cpp.o"
  "CMakeFiles/mlec_util.dir/progress.cpp.o.d"
  "CMakeFiles/mlec_util.dir/rng.cpp.o"
  "CMakeFiles/mlec_util.dir/rng.cpp.o.d"
  "CMakeFiles/mlec_util.dir/stats.cpp.o"
  "CMakeFiles/mlec_util.dir/stats.cpp.o.d"
  "CMakeFiles/mlec_util.dir/table.cpp.o"
  "CMakeFiles/mlec_util.dir/table.cpp.o.d"
  "CMakeFiles/mlec_util.dir/thread_pool.cpp.o"
  "CMakeFiles/mlec_util.dir/thread_pool.cpp.o.d"
  "libmlec_util.a"
  "libmlec_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlec_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
