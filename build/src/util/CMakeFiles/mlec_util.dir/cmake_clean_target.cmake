file(REMOVE_RECURSE
  "libmlec_util.a"
)
