# Empty compiler generated dependencies file for mlec_util.
# This may be replaced when dependencies are built.
