# Empty compiler generated dependencies file for bench_fig13_slec_burst_pdl.
# This may be replaced when dependencies are built.
