# Empty compiler generated dependencies file for bench_sec514_slec_traffic.
# This may be replaced when dependencies are built.
