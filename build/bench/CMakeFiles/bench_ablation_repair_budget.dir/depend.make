# Empty dependencies file for bench_ablation_repair_budget.
# This may be replaced when dependencies are built.
