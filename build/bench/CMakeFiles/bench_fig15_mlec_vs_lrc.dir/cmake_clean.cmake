file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_mlec_vs_lrc.dir/bench_fig15_mlec_vs_lrc.cpp.o"
  "CMakeFiles/bench_fig15_mlec_vs_lrc.dir/bench_fig15_mlec_vs_lrc.cpp.o.d"
  "bench_fig15_mlec_vs_lrc"
  "bench_fig15_mlec_vs_lrc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_mlec_vs_lrc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
