# Empty compiler generated dependencies file for bench_fig15_mlec_vs_lrc.
# This may be replaced when dependencies are built.
