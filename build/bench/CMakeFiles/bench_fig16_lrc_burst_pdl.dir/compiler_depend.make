# Empty compiler generated dependencies file for bench_fig16_lrc_burst_pdl.
# This may be replaced when dependencies are built.
