file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_lrc_burst_pdl.dir/bench_fig16_lrc_burst_pdl.cpp.o"
  "CMakeFiles/bench_fig16_lrc_burst_pdl.dir/bench_fig16_lrc_burst_pdl.cpp.o.d"
  "bench_fig16_lrc_burst_pdl"
  "bench_fig16_lrc_burst_pdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_lrc_burst_pdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
