file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_afr.dir/bench_ablation_afr.cpp.o"
  "CMakeFiles/bench_ablation_afr.dir/bench_ablation_afr.cpp.o.d"
  "bench_ablation_afr"
  "bench_ablation_afr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_afr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
