# Empty compiler generated dependencies file for bench_ablation_afr.
# This may be replaced when dependencies are built.
