file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bursts.dir/bench_ablation_bursts.cpp.o"
  "CMakeFiles/bench_ablation_bursts.dir/bench_ablation_bursts.cpp.o.d"
  "bench_ablation_bursts"
  "bench_ablation_bursts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bursts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
