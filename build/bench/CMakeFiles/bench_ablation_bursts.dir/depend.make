# Empty dependencies file for bench_ablation_bursts.
# This may be replaced when dependencies are built.
