# Empty compiler generated dependencies file for bench_fig05_mlec_burst_pdl.
# This may be replaced when dependencies are built.
