
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig05_mlec_burst_pdl.cpp" "bench/CMakeFiles/bench_fig05_mlec_burst_pdl.dir/bench_fig05_mlec_burst_pdl.cpp.o" "gcc" "bench/CMakeFiles/bench_fig05_mlec_burst_pdl.dir/bench_fig05_mlec_burst_pdl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mlec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/mlec_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mlec_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/mlec_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/placement/CMakeFiles/mlec_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/mlec_math.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/mlec_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mlec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
