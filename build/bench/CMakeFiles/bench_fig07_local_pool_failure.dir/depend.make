# Empty dependencies file for bench_fig07_local_pool_failure.
# This may be replaced when dependencies are built.
