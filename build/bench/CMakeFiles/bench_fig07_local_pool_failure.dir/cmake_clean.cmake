file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_local_pool_failure.dir/bench_fig07_local_pool_failure.cpp.o"
  "CMakeFiles/bench_fig07_local_pool_failure.dir/bench_fig07_local_pool_failure.cpp.o.d"
  "bench_fig07_local_pool_failure"
  "bench_fig07_local_pool_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_local_pool_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
