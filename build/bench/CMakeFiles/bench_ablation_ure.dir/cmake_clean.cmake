file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ure.dir/bench_ablation_ure.cpp.o"
  "CMakeFiles/bench_ablation_ure.dir/bench_ablation_ure.cpp.o.d"
  "bench_ablation_ure"
  "bench_ablation_ure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
