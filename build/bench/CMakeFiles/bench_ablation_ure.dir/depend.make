# Empty dependencies file for bench_ablation_ure.
# This may be replaced when dependencies are built.
