file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_repair_time_methods.dir/bench_fig09_repair_time_methods.cpp.o"
  "CMakeFiles/bench_fig09_repair_time_methods.dir/bench_fig09_repair_time_methods.cpp.o.d"
  "bench_fig09_repair_time_methods"
  "bench_fig09_repair_time_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_repair_time_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
