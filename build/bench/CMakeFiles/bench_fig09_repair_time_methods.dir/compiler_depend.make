# Empty compiler generated dependencies file for bench_fig09_repair_time_methods.
# This may be replaced when dependencies are built.
