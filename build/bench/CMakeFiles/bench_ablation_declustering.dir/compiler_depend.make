# Empty compiler generated dependencies file for bench_ablation_declustering.
# This may be replaced when dependencies are built.
