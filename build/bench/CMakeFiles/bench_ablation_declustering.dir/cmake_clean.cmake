file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_declustering.dir/bench_ablation_declustering.cpp.o"
  "CMakeFiles/bench_ablation_declustering.dir/bench_ablation_declustering.cpp.o.d"
  "bench_ablation_declustering"
  "bench_ablation_declustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_declustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
