file(REMOVE_RECURSE
  "CMakeFiles/bench_sec524_lrc_traffic.dir/bench_sec524_lrc_traffic.cpp.o"
  "CMakeFiles/bench_sec524_lrc_traffic.dir/bench_sec524_lrc_traffic.cpp.o.d"
  "bench_sec524_lrc_traffic"
  "bench_sec524_lrc_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec524_lrc_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
