# Empty dependencies file for bench_sec524_lrc_traffic.
# This may be replaced when dependencies are built.
