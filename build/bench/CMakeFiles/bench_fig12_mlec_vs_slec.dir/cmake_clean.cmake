file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_mlec_vs_slec.dir/bench_fig12_mlec_vs_slec.cpp.o"
  "CMakeFiles/bench_fig12_mlec_vs_slec.dir/bench_fig12_mlec_vs_slec.cpp.o.d"
  "bench_fig12_mlec_vs_slec"
  "bench_fig12_mlec_vs_slec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_mlec_vs_slec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
