# Empty compiler generated dependencies file for bench_fig12_mlec_vs_slec.
# This may be replaced when dependencies are built.
