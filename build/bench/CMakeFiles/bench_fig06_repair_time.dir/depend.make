# Empty dependencies file for bench_fig06_repair_time.
# This may be replaced when dependencies are built.
