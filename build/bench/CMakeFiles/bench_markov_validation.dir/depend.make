# Empty dependencies file for bench_markov_validation.
# This may be replaced when dependencies are built.
