file(REMOVE_RECURSE
  "CMakeFiles/bench_markov_validation.dir/bench_markov_validation.cpp.o"
  "CMakeFiles/bench_markov_validation.dir/bench_markov_validation.cpp.o.d"
  "bench_markov_validation"
  "bench_markov_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_markov_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
