# Empty compiler generated dependencies file for bench_gf_kernels.
# This may be replaced when dependencies are built.
