file(REMOVE_RECURSE
  "CMakeFiles/bench_fleet_validation.dir/bench_fleet_validation.cpp.o"
  "CMakeFiles/bench_fleet_validation.dir/bench_fleet_validation.cpp.o.d"
  "bench_fleet_validation"
  "bench_fleet_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fleet_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
