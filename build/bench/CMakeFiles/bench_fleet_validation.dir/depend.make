# Empty dependencies file for bench_fleet_validation.
# This may be replaced when dependencies are built.
