file(REMOVE_RECURSE
  "CMakeFiles/mlecctl.dir/mlecctl.cpp.o"
  "CMakeFiles/mlecctl.dir/mlecctl.cpp.o.d"
  "mlecctl"
  "mlecctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlecctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
