# Empty dependencies file for mlecctl.
# This may be replaced when dependencies are built.
